//===- serving/HttpMetricsServer.cpp - /metrics over HTTP -----------------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//

#include "serving/HttpMetricsServer.h"

#include "serving/ServerContext.h"

#include <arpa/inet.h>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <stdexcept>
#include <sys/socket.h>
#include <unistd.h>

namespace specpar {
namespace serving {

namespace {

/// Writes all of \p Data to \p Fd, resuming after short writes and
/// EINTR (best effort beyond that; the peer may close). A large
/// /metrics body routinely exceeds the socket send buffer, so send()
/// returning less than requested — or -1/EINTR under a signal — is the
/// normal case, not an error.
void writeAll(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::send(Fd, Data.data() + Off, Data.size() - Off, MSG_NOSIGNAL);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      return;
    Off += static_cast<size_t>(N);
  }
}

/// Reads until the header terminator (one request per connection, no
/// body expected on GET). Retries EINTR; bounded to keep a misbehaving
/// client cheap.
std::string readRequest(int Fd) {
  std::string Req;
  char Buf[2048];
  while (Req.size() < 16 * 1024 &&
         Req.find("\r\n\r\n") == std::string::npos) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      break;
    Req.append(Buf, static_cast<size_t>(N));
  }
  return Req;
}

/// Pulls the decimal `id` query parameter out of a
/// `GET /debug/trace?id=<n> HTTP/1.1` request line. False when the
/// parameter is missing, empty, non-numeric, or overflows.
bool parseTraceId(const std::string &Req, uint64_t &Id) {
  const size_t LineEnd = Req.find("\r\n");
  const std::string Line =
      Req.substr(0, LineEnd == std::string::npos ? Req.size() : LineEnd);
  const size_t Query = Line.find("?id=");
  if (Query == std::string::npos)
    return false;
  size_t Pos = Query + 4;
  if (Pos >= Line.size() || !std::isdigit(static_cast<unsigned char>(Line[Pos])))
    return false;
  uint64_t V = 0;
  for (; Pos < Line.size() &&
         std::isdigit(static_cast<unsigned char>(Line[Pos]));
       ++Pos) {
    const uint64_t Digit = static_cast<uint64_t>(Line[Pos] - '0');
    if (V > (UINT64_MAX - Digit) / 10)
      return false;
    V = V * 10 + Digit;
  }
  // The id must end the parameter: `?id=12x` or `?id=12&` with trailing
  // junk other than whitespace/& is rejected rather than half-parsed.
  if (Pos < Line.size() && Line[Pos] != ' ' && Line[Pos] != '&')
    return false;
  Id = V;
  return true;
}

} // namespace

HttpMetricsServer::HttpMetricsServer(ServerContext &Ctx, uint16_t Port)
    : Ctx(Ctx) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    throw std::runtime_error("metrics endpoint: socket() failed");
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Fd, 16) < 0) {
    ::close(Fd);
    throw std::runtime_error("metrics endpoint: bind/listen failed");
  }
  socklen_t Len = sizeof(Addr);
  ::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len);
  BoundPort = ntohs(Addr.sin_port);
  ListenFd.store(Fd, std::memory_order_release);
  Loop = std::thread([this] { acceptLoop(); });
}

HttpMetricsServer::~HttpMetricsServer() { stop(); }

void HttpMetricsServer::stop() {
  // Publish -1 first; the loop re-reads between polls and exits, so the
  // close below can never race an accept() on a live fd.
  int Fd = ListenFd.exchange(-1, std::memory_order_acq_rel);
  if (Fd < 0)
    return;
  if (Loop.joinable())
    Loop.join();
  ::close(Fd);
}

void HttpMetricsServer::acceptLoop() {
  const int Fd = ListenFd.load(std::memory_order_acquire);
  for (;;) {
    // Poll with a short timeout so stop() (which clears ListenFd) is
    // observed without needing to race close() against accept().
    pollfd P{Fd, POLLIN, 0};
    int Ready = ::poll(&P, 1, 50);
    if (ListenFd.load(std::memory_order_acquire) < 0)
      return;
    if (Ready <= 0 || !(P.revents & POLLIN))
      continue;
    int Client = ::accept(Fd, nullptr, nullptr);
    if (Client < 0)
      continue;
    std::string Req = readRequest(Client);
    std::string Body, Status = "200 OK",
                       ContentType = "text/plain; version=0.0.4";
    if (Req.rfind("GET /metrics", 0) == 0) {
      Body = Ctx.metricsText();
    } else if (Req.rfind("GET /statusz", 0) == 0) {
      Body = Ctx.statusJson();
      ContentType = "application/json";
    } else if (Req.rfind("GET /debug/trace", 0) == 0) {
      uint64_t Id = 0;
      if (parseTraceId(Req, Id)) {
        if (Ctx.traceJson(Id, Body)) {
          ContentType = "application/json";
        } else {
          Status = "404 Not Found";
          Body = "trace " + std::to_string(Id) +
                 " not found (evicted from the flight recorders' retained "
                 "window, or never admitted)\n";
          ContentType = "text/plain";
        }
      } else {
        Status = "400 Bad Request";
        Body = "usage: /debug/trace?id=<TraceId>\n";
        ContentType = "text/plain";
      }
    } else if (Req.rfind("GET /healthz", 0) == 0) {
      // Real state, not a constant: a scraper must see a quarantined
      // shard (degraded, 503) and a shutting-down server (draining).
      const ServerHealth H = Ctx.health();
      Body = std::string(serverHealthName(H)) + "\n";
      if (H == ServerHealth::Degraded)
        Status = "503 Service Unavailable";
      ContentType = "text/plain";
    } else {
      Status = "404 Not Found";
      Body = "not found\n";
      ContentType = "text/plain";
    }
    std::string Resp = "HTTP/1.1 " + Status +
                       "\r\nContent-Type: " + ContentType +
                       "\r\nContent-Length: " + std::to_string(Body.size()) +
                       "\r\nConnection: close\r\n\r\n" + Body;
    writeAll(Client, Resp);
    ::close(Client);
  }
}

std::string HttpMetricsServer::get(uint16_t Port, const std::string &Path) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return "";
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    ::close(Fd);
    return "";
  }
  std::string Req = "GET " + Path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                    "Connection: close\r\n\r\n";
  writeAll(Fd, Req);
  std::string Resp;
  char Buf[4096];
  for (;;) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      break;
    Resp.append(Buf, static_cast<size_t>(N));
  }
  ::close(Fd);
  return Resp;
}

} // namespace serving
} // namespace specpar
