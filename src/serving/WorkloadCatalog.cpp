//===- serving/WorkloadCatalog.cpp - specd's preloaded datasets -----------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//

#include "serving/Job.h"

#include "compile/Compiler.h"
#include "interp/NonSpecEval.h"
#include "lang/Parser.h"
#include "lexgen/Languages.h"
#include "mwis/Mwis.h"
#include "workloads/Datasets.h"
#include "workloads/SourceGen.h"

#include <algorithm>
#include <stdexcept>

namespace specpar {
namespace serving {

namespace {

/// The Speculate program Spec jobs run: a sum-of-squares specfold whose
/// predictor is the closed form of the carried value, so a healthy run
/// is fully parallel (predictions validate) and any misprediction the
/// metrics show came from degradation, not the program. `N` is clamped
/// so the sum (and the predictor's intermediate product) stay far from
/// int64 overflow, where the closed form and the language's wrapping
/// arithmetic would part ways.
std::string makeSpecSource(int64_t N) {
  return "// Served by specd as JobKind::Spec (compiled onto the native "
         "runtime).\n"
         "main = specfold(\\i acc. acc + i * i,\n"
         "                \\i. ((i - 1) * i * (2 * i - 1)) / 6,\n"
         "                1, " +
         std::to_string(N) + ")";
}

} // namespace

WorkloadCatalog::WorkloadCatalog(int64_t Scale, uint64_t Seed)
    : Lex(lexgen::makeLexer(lexgen::Language::Java)),
      Text(workloads::generateSource(lexgen::Language::Java, Seed,
                                     std::max<int64_t>(Scale, 4096))),
      Enc(huffman::encode(workloads::generateHuffmanData(
          workloads::HuffmanFlavour::Text, Seed + 1,
          std::max<int64_t>(Scale, 4096)))),
      Dec(Enc.Code), Bits(Enc.Bytes, Enc.NumBits),
      Weights(workloads::generatePathGraph(
          Seed + 2, static_cast<size_t>(std::max<int64_t>(Scale / 2, 2048)),
          1000)) {
  LexOracleTokens = static_cast<int64_t>(Lex.lexAll(Text).size());
  HuffOracle = Dec.decodeAll(Bits, Enc.NumSymbols);
  MwisOracleWeight = mwis::solveSequential(Weights, nullptr);

  // The Speculate-sourced dataset: parse, take the reference
  // interpreter's non-speculative result as the oracle, and compile
  // through the admission gate once so request handling never pays for
  // (or races on) compilation. Any failure here is a build bug in the
  // embedded program, not a request-time condition — fail loudly.
  const int64_t N = std::min<int64_t>(std::max<int64_t>(Scale, 4096),
                                      int64_t(1) << 20);
  SpecSource = makeSpecSource(N);
  auto Parsed = lang::parseProgram(SpecSource);
  if (!Parsed)
    throw std::runtime_error("workload catalog: embedded Speculate program "
                             "does not parse: " +
                             Parsed.error());
  interp::RunOutcome Ref = interp::runNonSpeculative(**Parsed);
  if (!Ref.ok() || !Ref.Result.isInt())
    throw std::runtime_error(
        "workload catalog: embedded Speculate program's reference run "
        "failed: " +
        Ref.statusStr());
  SpecOracle = Ref.Result.asInt();
  if (SpecOracle != N * (N + 1) * (2 * N + 1) / 6)
    throw std::runtime_error("workload catalog: embedded Speculate "
                             "program's oracle disagrees with the closed "
                             "form");
  auto Compiled = compile::compileProgram(**Parsed);
  if (!Compiled)
    throw std::runtime_error("workload catalog: embedded Speculate program "
                             "was not admitted by the native compiler: " +
                             Compiled.error());
  SpecProgram = std::move(*Compiled);
}

} // namespace serving
} // namespace specpar
