//===- serving/WorkloadCatalog.cpp - specd's preloaded datasets -----------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//

#include "serving/Job.h"

#include "lexgen/Languages.h"
#include "mwis/Mwis.h"
#include "workloads/Datasets.h"
#include "workloads/SourceGen.h"

#include <algorithm>

namespace specpar {
namespace serving {

WorkloadCatalog::WorkloadCatalog(int64_t Scale, uint64_t Seed)
    : Lex(lexgen::makeLexer(lexgen::Language::Java)),
      Text(workloads::generateSource(lexgen::Language::Java, Seed,
                                     std::max<int64_t>(Scale, 4096))),
      Enc(huffman::encode(workloads::generateHuffmanData(
          workloads::HuffmanFlavour::Text, Seed + 1,
          std::max<int64_t>(Scale, 4096)))),
      Dec(Enc.Code), Bits(Enc.Bytes, Enc.NumBits),
      Weights(workloads::generatePathGraph(
          Seed + 2, static_cast<size_t>(std::max<int64_t>(Scale / 2, 2048)),
          1000)) {
  LexOracleTokens = static_cast<int64_t>(Lex.lexAll(Text).size());
  HuffOracle = Dec.decodeAll(Bits, Enc.NumSymbols);
  MwisOracleWeight = mwis::solveSequential(Weights, nullptr);
}

} // namespace serving
} // namespace specpar
