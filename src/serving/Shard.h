//===- serving/Shard.h - One executor shard of specd ------------*- C++ -*-===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One shard of the specd serving layer: an owned `rt::SpecExecutor`
/// (one core group), a bounded admission queue, and a dispatch thread
/// that turns queued jobs into chunked speculative runs on that
/// executor. Shards are fully isolated from each other — each owns its
/// executor handle via the explicit `SpecExecutor::create()` API, so
/// stats, fault plans, and queue backlog never bleed across shards (the
/// property tests/serving_test.cpp pins down).
///
//===----------------------------------------------------------------------===//

#ifndef SPECPAR_SERVING_SHARD_H
#define SPECPAR_SERVING_SHARD_H

#include "runtime/FlightRecorder.h"
#include "runtime/ProfileStore.h"
#include "runtime/Speculation.h"
#include "serving/Job.h"
#include "serving/Metrics.h"
#include "serving/TenantPolicy.h"

#include <array>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>

namespace specpar {
namespace serving {

/// Server-side state of one registered tenant: its policy, its tracer
/// (when tracing is on), and the aggregates the metrics endpoint
/// renders. Shared by every shard a tenant's jobs land on; `record()`
/// serializes updates.
struct TenantState {
  explicit TenantState(TenantPolicy P)
      : Policy(std::move(P)),
        Trace(Policy.Trace ? std::make_unique<rt::Tracer>() : nullptr),
        Profile(Policy.ProfileGuided ? std::make_unique<rt::ProfileStore>()
                                     : nullptr) {
    // Warm from disk when persistence is configured; a missing or
    // corrupt file loads as cold, never as a registration failure.
    if (Profile && !Policy.ProfilePath.empty())
      Profile->load(Policy.ProfilePath);
  }

  ~TenantState() {
    if (Profile && !Policy.ProfilePath.empty())
      Profile->save(Policy.ProfilePath);
  }

  const TenantPolicy Policy;
  const std::unique_ptr<rt::Tracer> Trace;
  /// The tenant's profile store (null unless `Policy.ProfileGuided`).
  /// Shared by every shard the tenant's jobs land on — the store is
  /// internally synchronized.
  const std::unique_ptr<rt::ProfileStore> Profile;

  /// Folds one finished (or rejected) job into the aggregates.
  void record(const JobResult &R) {
    std::lock_guard<std::mutex> Lock(M);
    Totals += R.Stats;
    ++Outcomes[static_cast<size_t>(R.Outcome)];
    Latency.observe(std::chrono::duration<double>(R.Latency).count());
  }

  /// Thread-safe copies for the metrics renderer.
  rt::stats::Snapshot totals() const {
    std::lock_guard<std::mutex> Lock(M);
    return Totals;
  }
  std::array<uint64_t, 4> outcomes() const {
    std::lock_guard<std::mutex> Lock(M);
    return Outcomes;
  }
  LatencyHistogram latency() const {
    std::lock_guard<std::mutex> Lock(M);
    return Latency;
  }

  /// Retries the server has scheduled for this tenant's jobs.
  std::atomic<uint64_t> Retries{0};

  /// One circuit breaker per shard for this tenant (see
  /// `TenantPolicy::BreakerThreshold`). Sized by the server at
  /// registration; guarded by `BreakerM`.
  struct Breaker {
    int Consecutive = 0;   ///< Failed attempts since the last success.
    uint8_t State = 0;     ///< 0 closed, 1 open, 2 half-open.
    std::chrono::steady_clock::time_point OpenedAt{};
    uint64_t Trips = 0;    ///< Closed/half-open -> open transitions.
  };
  mutable std::mutex BreakerM;
  std::vector<Breaker> Breakers;

private:
  mutable std::mutex M;
  rt::stats::Snapshot Totals;
  std::array<uint64_t, 4> Outcomes{}; ///< Indexed by JobOutcome.
  LatencyHistogram Latency;
};

/// An admitted job waiting on (or running on) a shard.
struct Ticket {
  Job Work;
  TenantState *Tenant = nullptr;
  std::promise<JobResult> Promise;
  std::chrono::steady_clock::time_point Enqueued;
  /// 1-based execution attempt this ticket represents; retries
  /// re-admit the same ticket with the next attempt number.
  int Attempt = 1;
  /// Absolute expiry of the job's *total* deadline budget (epoch-zero
  /// when the tenant has no deadline). Every attempt — first or retry —
  /// runs under whatever remains, never a fresh full deadline.
  std::chrono::steady_clock::time_point AbsDeadline{};
  /// Causal trace identity: TraceId minted once at admission, SpanId
  /// re-stamped per execution attempt (= Attempt), so every runtime
  /// event of every attempt of this job carries the same TraceId.
  rt::TraceContext Ctx;
};

class Shard {
public:
  /// Called with each finished ticket + result instead of the shard
  /// resolving the promise itself; lets the server layer decide retry
  /// vs terminal resolution. When unset the shard records and resolves
  /// directly (standalone use).
  using CompletionFn = std::function<void(Ticket &&, JobResult &&)>;

  /// \p NumThreads workers back this shard's executor; \p QueueCapacity
  /// bounds the admission queue (enqueue() refuses beyond it).
  /// \p FlightOpts configures the shard's always-on flight recorder
  /// (dump dir, retention); its Label and AttemptIdBase are overridden
  /// per shard so every shard dumps under its own name and mints attempt
  /// ids in its own namespace.
  Shard(unsigned Index, unsigned NumThreads, size_t QueueCapacity,
        const WorkloadCatalog &Catalog,
        rt::FlightRecorder::Options FlightOpts = rt::FlightRecorder::Options());

  /// Stops the dispatch thread; queued-but-unstarted tickets are
  /// resolved as Rejected so no future is ever broken.
  ~Shard();

  Shard(const Shard &) = delete;
  Shard &operator=(const Shard &) = delete;

  /// Installs the completion hook. Call before the first enqueue.
  void onComplete(CompletionFn F);

  /// Admits \p T (false when the queue is full, the shard is stopping,
  /// or the shard is quarantined; \p T is left intact so the caller can
  /// reject or re-route it).
  bool enqueue(Ticket &&T);

  /// Queued + running jobs — the admission policy's load signal.
  uint64_t load() const;

  /// Jobs currently waiting in the queue.
  size_t queueDepth() const;

  /// Jobs this shard has finished (any outcome).
  uint64_t completedJobs() const;

  /// Blocks until the queue is empty and no job is running.
  void drain();

  /// Stops accepting work, finishes the job in flight, rejects the rest.
  void stop();

  /// Health watchdog surface. `busySinceNs()` is the steady-clock
  /// timestamp (ns) at which the currently running job started, 0 when
  /// the dispatcher is idle — a large, non-zero age means the
  /// dispatcher is stuck inside one job. The quarantine flag gates
  /// admission (enqueue refuses) and shard selection; the server's
  /// health watchdog sets it and drains the backlog via takeQueued().
  int64_t busySinceNs() const {
    return BusySinceNs.load(std::memory_order_acquire);
  }
  bool quarantined() const {
    return Quarantined.load(std::memory_order_acquire);
  }
  void setQuarantined(bool Q) {
    Quarantined.store(Q, std::memory_order_release);
  }

  /// Removes and returns every queued-but-unstarted ticket (the job in
  /// flight, if any, is not touched). Used to re-dispatch a quarantined
  /// shard's backlog to healthy shards.
  std::vector<Ticket> takeQueued();

  unsigned index() const { return Index; }
  const std::shared_ptr<rt::SpecExecutor> &executor() const { return Ex; }
  rt::ExecutorStats executorStats() const { return Ex->stats(); }

  /// The shard's always-on flight recorder: primary trace sink of every
  /// job this shard runs (tenant tracers are tee'd off it), retaining
  /// the recent-event window anomaly dumps and `/debug/trace` read.
  rt::FlightRecorder &flight() { return Flight; }
  const rt::FlightRecorder &flight() const { return Flight; }

private:
  void dispatchLoop();
  void finish(Ticket &&T, JobResult &&R);
  JobResult runJob(const Job &Work, TenantState &Tenant,
                   std::chrono::steady_clock::time_point AbsDeadline,
                   rt::TraceContext Ctx);

  const unsigned Index;
  const size_t QueueCapacity;
  const WorkloadCatalog &Catalog;
  const std::shared_ptr<rt::SpecExecutor> Ex;
  rt::FlightRecorder Flight;

  mutable std::mutex M;
  std::condition_variable QueueCV; ///< Signals the dispatch thread.
  std::condition_variable IdleCV;  ///< Signals drain() waiters.
  std::deque<Ticket> Queue;
  bool Busy = false;     ///< A job is between pop and promise-fulfil.
  bool Stopping = false; ///< No further admissions; loop exits when idle.
  uint64_t Completed = 0;
  CompletionFn Completion; ///< Set once before first enqueue.

  std::atomic<int64_t> BusySinceNs{0}; ///< Progress heartbeat.
  std::atomic<bool> Quarantined{false};

  std::thread Dispatcher; ///< Last member: joins before state dies.
};

} // namespace serving
} // namespace specpar

#endif // SPECPAR_SERVING_SHARD_H
