//===- serving/Metrics.h - Prometheus text exposition -----------*- C++ -*-===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal Prometheus text-format (version 0.0.4) rendering for the
/// specd metrics endpoint: `# HELP` / `# TYPE` headers emitted once per
/// family, samples with sorted label sets, histograms in the cumulative
/// `_bucket`/`_sum`/`_count` encoding. No dependency beyond the standard
/// library — the format is plain text by design.
///
//===----------------------------------------------------------------------===//

#ifndef SPECPAR_SERVING_METRICS_H
#define SPECPAR_SERVING_METRICS_H

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace specpar {
namespace serving {

/// A fixed-bound latency histogram. Counts are kept per-bucket (the
/// writer cumulates when rendering, as the exposition format's `le`
/// buckets require); the last slot counts observations above every
/// bound (the `+Inf` bucket).
class LatencyHistogram {
public:
  /// Bucket upper bounds in seconds: 100us .. 10s, roughly 1-2.5-5 per
  /// decade — wide enough for queueing delay under overload.
  static constexpr std::array<double, 12> Bounds = {
      1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
      1e-2, 2.5e-2, 5e-2, 1e-1, 1.0,    10.0};

  void observe(double Seconds) {
    size_t I = 0;
    while (I < Bounds.size() && Seconds > Bounds[I])
      ++I;
    ++Counts[I];
    Sum += Seconds;
    ++Count;
  }

  const std::array<uint64_t, Bounds.size() + 1> &counts() const {
    return Counts;
  }
  double sum() const { return Sum; }
  uint64_t count() const { return Count; }

private:
  std::array<uint64_t, Bounds.size() + 1> Counts{};
  double Sum = 0;
  uint64_t Count = 0;
};

/// Streams one exposition document. Families must be opened (help/type
/// emitted) before their samples; the writer enforces nothing beyond
/// escaping, so callers emit families in one contiguous block each, as
/// the format requires.
class PrometheusWriter {
public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  /// Opens a family: `# HELP name help` + `# TYPE name type`.
  void family(const std::string &Name, const std::string &Help,
              const char *Type);

  /// One sample of the most recently opened family (or of \p Name
  /// histogram series, which share the family prefix).
  void sample(const std::string &Name, const Labels &L, double Value);
  void sample(const std::string &Name, const Labels &L, uint64_t Value);

  /// Renders \p H as `Name_bucket{...,le="..."}` series plus `_sum` and
  /// `_count`, with \p L prepended to every label set. The caller opens
  /// the family (type `histogram`) once, then renders one label set per
  /// call — the format allows one header per family only.
  void histogram(const std::string &Name, const Labels &L,
                 const LatencyHistogram &H);

  std::string str() && { return std::move(Out); }
  const std::string &str() const & { return Out; }

private:
  void appendLabels(const Labels &L);
  std::string Out;
};

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
std::string escapeLabelValue(const std::string &V);

} // namespace serving
} // namespace specpar

#endif // SPECPAR_SERVING_METRICS_H
