//===- serving/HttpMetricsServer.h - /metrics over HTTP ---------*- C++ -*-===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately tiny HTTP/1.1 endpoint for specd introspection: one
/// accept-loop thread on a loopback POSIX socket serving
///   * `GET /metrics`          — `ServerContext::metricsText()` as
///                               `text/plain; version=0.0.4`,
///   * `GET /statusz`          — `ServerContext::statusJson()` (live
///                               shard/tenant/in-flight state, JSON),
///   * `GET /debug/trace?id=N` — `ServerContext::traceJson()` span tree
///                               (404 once evicted, 400 on a bad id),
///   * `GET /healthz`          — ok/draining/degraded (503 on degraded),
/// anything else with 404. One request per connection
/// (`Connection: close`), no TLS, no keep-alive, no dependencies — it
/// exists so a Prometheus scraper (or curl in the smoke test) can watch
/// a running specd, not to be a web server.
///
//===----------------------------------------------------------------------===//

#ifndef SPECPAR_SERVING_HTTPMETRICSSERVER_H
#define SPECPAR_SERVING_HTTPMETRICSSERVER_H

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

namespace specpar {
namespace serving {

class ServerContext;

class HttpMetricsServer {
public:
  /// Binds 127.0.0.1:\p Port (0 picks an ephemeral port) and starts the
  /// accept loop. Throws std::runtime_error when the bind fails.
  HttpMetricsServer(ServerContext &Ctx, uint16_t Port);

  /// Stops accepting and joins the loop.
  ~HttpMetricsServer();

  HttpMetricsServer(const HttpMetricsServer &) = delete;
  HttpMetricsServer &operator=(const HttpMetricsServer &) = delete;

  /// The actually bound port (resolves Port==0).
  uint16_t port() const { return BoundPort; }

  void stop();

  /// Blocking loopback scrape of `GET \p Path` from \p Port; returns the
  /// whole response (headers + body), or an empty string on connect
  /// failure. A test/CLI convenience, not a general HTTP client.
  static std::string get(uint16_t Port, const std::string &Path);

private:
  void acceptLoop();

  ServerContext &Ctx;
  /// The listening socket; stop() publishes -1 so the accept loop (which
  /// re-reads it between polls) exits without racing a close().
  std::atomic<int> ListenFd{-1};
  uint16_t BoundPort = 0;
  std::thread Loop;
};

} // namespace serving
} // namespace specpar

#endif // SPECPAR_SERVING_HTTPMETRICSSERVER_H
