//===- simsched/SimSched.h - Discrete-event speculation simulator -*- C++ -*-=//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A discrete-event simulator of a P-processor machine executing a
/// speculative iteration, mirroring the scheduling policy of the runtime
/// in runtime/Speculation.h. This is the hardware substitution documented
/// in DESIGN.md: the host has a single vCPU, so wall-clock threading
/// cannot exhibit parallel speedups; instead the simulator consumes
/// *measured* per-segment work and *measured* prediction outcomes from the
/// real application code and computes the makespan a P-processor machine
/// would achieve.
///
/// Model (matching the real runtime):
///  * a prologue on the spawning thread runs all predictors and dispatches
///    all tasks (SpawnOverhead + PredictorWork each);
///  * speculative tasks are list-scheduled greedily onto P workers;
///  * a dedicated validator thread validates iterations in order
///    (ValidationOverhead each) with the runtime's quiescence discipline:
///    it waits for every attempt of the slot to finish and accepts only a
///    last-finishing attempt with the correct input; a mispredicted
///    iteration is re-executed by the validator itself (Seq mode), or
///    repaired by a corrective task chained from the completion of the
///    previous iteration's attempt (Par mode, at most one corrective
///    attempt per iteration — exactly the runtime's MaxAttempts=2 rule,
///    including the possibility that a *garbage* corrective attempt
///    claims the slot during misprediction cascades and forces a
///    validator re-execution);
///  * a wrong-input execution is assumed to produce a wrong output (the
///    conservative assumption; accidental value collisions would only
///    improve the real numbers).
///
//===----------------------------------------------------------------------===//

#ifndef SPECPAR_SIMSCHED_SIMSCHED_H
#define SPECPAR_SIMSCHED_SIMSCHED_H

#include <cstdint>
#include <string>
#include <vector>

namespace specpar {
namespace sim {

/// Per-iteration inputs, measured from the real application.
struct TaskSpec {
  /// Cost of executing the iteration body once (time units).
  double Work = 1.0;
  /// Whether the predicted incoming value equals the true incoming value.
  /// (Predictions are input-independent, so this is well defined without
  /// simulating value flow.)
  bool PredictionCorrect = true;
};

/// Validation policy (mirrors rt::ValidationMode).
enum class SimValidation { Seq, Par };

/// Machine and runtime-overhead parameters.
struct MachineParams {
  /// Worker processors executing speculative tasks.
  unsigned NumProcs = 4;
  /// Cost of dispatching one task from the spawning thread.
  double SpawnOverhead = 0.0;
  /// Cost of running one prediction function (spawning thread).
  double PredictorWork = 0.0;
  /// Validator cost per iteration boundary.
  double ValidationOverhead = 0.0;
  SimValidation Mode = SimValidation::Seq;
};

/// Simulation outputs.
struct SimResult {
  /// Time at which the final iteration is validated.
  double Makespan = 0.0;
  /// Baseline: the plain sequential loop (no speculation machinery).
  double SequentialTime = 0.0;
  /// SequentialTime / Makespan.
  double Speedup = 0.0;
  /// Mispredicted iteration boundaries.
  int64_t Mispredictions = 0;
  /// Re-executions performed serially by the validator.
  int64_t ValidatorReexecutions = 0;
  /// Corrective tasks spawned (Par mode).
  int64_t CorrectiveTasks = 0;
  /// Total work executed (including wasted speculative work), in time
  /// units; WastedWork = TotalWork - SequentialTime.
  double TotalWork = 0.0;

  std::string str() const;
};

/// Simulates one speculative iteration run.
SimResult simulateIteration(const std::vector<TaskSpec> &Tasks,
                            const MachineParams &Params);

} // namespace sim
} // namespace specpar

#endif // SPECPAR_SIMSCHED_SIMSCHED_H
