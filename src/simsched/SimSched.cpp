//===- simsched/SimSched.cpp - Discrete-event speculation simulator -------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//

#include "simsched/SimSched.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <queue>

using namespace specpar;
using namespace specpar::sim;

std::string SimResult::str() const {
  return formatString(
      "makespan=%.3f seq=%.3f speedup=%.2f mispred=%lld reexec=%lld "
      "corrective=%lld totalWork=%.3f",
      Makespan, SequentialTime, Speedup,
      static_cast<long long>(Mispredictions),
      static_cast<long long>(ValidatorReexecutions),
      static_cast<long long>(CorrectiveTasks), TotalWork);
}

namespace {

/// One speculative execution in flight (initial or corrective).
struct SimAttempt {
  int64_t Iter;      // iteration index
  bool InputCorrect; // executes with the true incoming value
  bool Initial;      // first attempt of the slot (uses the prediction)
  double Ready;      // time it can start
  double Completion = -1.0;
};

struct Event {
  double Time;
  enum class Kind { Ready, ProcFree } K;
  int64_t AttemptId; // for Ready
  // Deterministic ordering: time, then kind, then id.
  bool operator>(const Event &O) const {
    if (Time != O.Time)
      return Time > O.Time;
    if (K != O.K)
      return K > O.K;
    return AttemptId > O.AttemptId;
  }
};

} // namespace

SimResult specpar::sim::simulateIteration(const std::vector<TaskSpec> &Tasks,
                                          const MachineParams &Params) {
  SimResult R;
  const int64_t N = static_cast<int64_t>(Tasks.size());
  for (const TaskSpec &T : Tasks)
    R.SequentialTime += T.Work;
  if (N == 0) {
    R.Speedup = 1.0;
    return R;
  }

  const unsigned P = std::max(1u, Params.NumProcs);

  // Prologue on the spawning thread: all predictions, then all dispatches.
  const double PrologueBase = Params.PredictorWork * static_cast<double>(N);

  std::vector<SimAttempt> Attempts;
  Attempts.reserve(static_cast<size_t>(N) * 2);
  // Slot bookkeeping: [iter] -> attempt ids (capacity 2, like the runtime).
  std::vector<std::vector<int64_t>> Slots(static_cast<size_t>(N));
  for (int64_t I = 0; I < N; ++I) {
    SimAttempt A;
    A.Iter = I;
    A.InputCorrect = (I == 0) || Tasks[static_cast<size_t>(I)].PredictionCorrect;
    A.Initial = true;
    A.Ready = PrologueBase +
              Params.SpawnOverhead * static_cast<double>(I + 1);
    Slots[static_cast<size_t>(I)].push_back(
        static_cast<int64_t>(Attempts.size()));
    Attempts.push_back(A);
  }

  // Discrete-event list scheduling onto P workers. A completion may chain
  // a corrective attempt for the next iteration (Par mode).
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> Events;
  for (int64_t I = 0; I < N; ++I)
    Events.push(Event{Attempts[static_cast<size_t>(I)].Ready,
                      Event::Kind::Ready, I});

  std::deque<int64_t> ReadyQueue; // attempt ids, FIFO
  unsigned FreeProcs = P;
  double Now = 0.0;

  auto OnCompletion = [&](int64_t AttemptId, double Time) {
    SimAttempt &A = Attempts[static_cast<size_t>(AttemptId)];
    A.Completion = Time;
    R.TotalWork += Tasks[static_cast<size_t>(A.Iter)].Work;
    if (Params.Mode != SimValidation::Par || A.Iter + 1 >= N)
      return;
    // Chain rule (mirrors the runtime): our speculative output is correct
    // iff our input was; it contradicts the next prediction unless both
    // are correct. Garbage outputs contradict everything.
    bool NextPredCorrect = Tasks[static_cast<size_t>(A.Iter + 1)].PredictionCorrect;
    bool Contradicts = !(A.InputCorrect && NextPredCorrect);
    auto &NextSlot = Slots[static_cast<size_t>(A.Iter + 1)];
    if (!Contradicts || NextSlot.size() >= 2)
      return;
    // A corrective attempt with our input; correct iff our output was.
    SimAttempt B;
    B.Iter = A.Iter + 1;
    B.InputCorrect = A.InputCorrect;
    B.Initial = false;
    B.Ready = Time + Params.SpawnOverhead;
    int64_t Id = static_cast<int64_t>(Attempts.size());
    NextSlot.push_back(Id);
    Attempts.push_back(B);
    ++R.CorrectiveTasks;
    Events.push(Event{B.Ready, Event::Kind::Ready, Id});
  };

  while (!Events.empty()) {
    Event E = Events.top();
    Events.pop();
    Now = E.Time;
    if (E.K == Event::Kind::Ready)
      ReadyQueue.push_back(E.AttemptId);
    else
      ++FreeProcs;
    // Start as many ready attempts as we have processors.
    while (FreeProcs > 0 && !ReadyQueue.empty()) {
      int64_t Id = ReadyQueue.front();
      ReadyQueue.pop_front();
      --FreeProcs;
      double Done =
          Now + Tasks[static_cast<size_t>(Attempts[static_cast<size_t>(Id)]
                                              .Iter)]
                    .Work;
      OnCompletion(Id, Done);
      Events.push(Event{Done, Event::Kind::ProcFree, Id});
    }
  }

  // Validation pass (dedicated validator thread, in iteration order),
  // mirroring the runtime's quiescence discipline: the validator waits
  // for every attempt of the slot to finish, accepts the attempt only if
  // the *last finisher* ran with the correct input (corrective attempts
  // serialize after the initial one, so a corrective present is the last
  // finisher), and otherwise re-executes so its own writes land last.
  double V = 0.0;
  for (int64_t I = 0; I < N; ++I) {
    if (I > 0 && !Tasks[static_cast<size_t>(I)].PredictionCorrect)
      ++R.Mispredictions;
    const auto &Slot = Slots[static_cast<size_t>(I)];
    double Quiesce = 0.0;
    for (int64_t Id : Slot)
      Quiesce = std::max(Quiesce, Attempts[static_cast<size_t>(Id)].Completion);
    const SimAttempt &LastFinisher =
        Attempts[static_cast<size_t>(Slot.back())];
    if (LastFinisher.InputCorrect) {
      V = std::max(V, Quiesce) + Params.ValidationOverhead;
    } else {
      // Validator re-executes with the true value it just established.
      ++R.ValidatorReexecutions;
      R.TotalWork += Tasks[static_cast<size_t>(I)].Work;
      V = std::max(V, Quiesce) + Tasks[static_cast<size_t>(I)].Work +
          Params.ValidationOverhead;
    }
  }
  R.Makespan = V;
  R.Speedup = R.SequentialTime > 0 ? R.SequentialTime / R.Makespan : 1.0;
  return R;
}
