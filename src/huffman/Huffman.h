//===- huffman/Huffman.h - Canonical Huffman codec --------------*- C++ -*-===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A byte-oriented canonical Huffman codec with the segmented decoding API
/// used by the paper's speculative Huffman benchmark. The loop-carried
/// value between segments is the absolute *bit position* at which the next
/// segment's first codeword starts; the prediction function finds a likely
/// synchronization point by decoding a small overlap window before the
/// segment boundary (the self-synchronization insight of Klein & Wiseman
/// cited by the paper).
///
//===----------------------------------------------------------------------===//

#ifndef SPECPAR_HUFFMAN_HUFFMAN_H
#define SPECPAR_HUFFMAN_HUFFMAN_H

#include "huffman/BitStream.h"
#include "support/Result.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace specpar {
namespace huffman {

/// A canonical Huffman code over the byte alphabet.
class HuffmanCode {
public:
  /// Builds the code for \p Data's byte frequencies. Requires a non-empty
  /// input; a single-distinct-symbol input gets a 1-bit code.
  static HuffmanCode fromData(const std::vector<uint8_t> &Data);

  /// Builds the code from explicit symbol frequencies (size 256).
  static HuffmanCode fromFrequencies(const std::array<uint64_t, 256> &Freq);

  /// Code length in bits for \p Symbol (0 if the symbol never occurs).
  unsigned codeLength(uint8_t Symbol) const { return Lengths[Symbol]; }

  /// Canonical code bits for \p Symbol (valid only if codeLength > 0).
  uint64_t codeBits(uint8_t Symbol) const { return Bits[Symbol]; }

  /// Longest code length in bits.
  unsigned maxCodeLength() const { return MaxLength; }

  /// Number of distinct symbols with nonzero frequency.
  unsigned numSymbols() const { return NumSymbols; }

private:
  friend class Decoder;
  std::array<uint8_t, 256> Lengths{};
  std::array<uint64_t, 256> Bits{};
  unsigned MaxLength = 0;
  unsigned NumSymbols = 0;
};

/// Encoded output: the bit stream plus the code needed to decode it.
struct Encoded {
  HuffmanCode Code;
  std::vector<uint8_t> Bytes;
  int64_t NumBits = 0;
  int64_t NumSymbols = 0;
};

/// Encodes \p Data with its own canonical Huffman code.
Encoded encode(const std::vector<uint8_t> &Data);

/// A bit-tree decoder over a canonical Huffman code.
class Decoder {
public:
  explicit Decoder(const HuffmanCode &Code);

  /// Decodes codewords starting at bit \p StartBit. Decoding continues as
  /// long as the *start* of the current codeword is < \p StopBit; decoded
  /// symbols are appended to \p Out (if non-null). Returns the bit
  /// position one past the last decoded codeword (>= StopBit, or NumBits
  /// if the stream ends first, or -1 if the stream ends inside a codeword
  /// — a desynchronized speculative decode).
  int64_t decodeRange(const BitReader &In, int64_t StartBit, int64_t StopBit,
                      std::vector<uint8_t> *Out) const;

  /// Decodes the whole stream (\p NumSymbols symbols) sequentially.
  std::vector<uint8_t> decodeAll(const BitReader &In,
                                 int64_t NumSymbols) const;

  /// The paper's overlap predictor: predicts the synchronization point at
  /// or after \p Boundary by decoding from (Boundary - OverlapBits),
  /// relying on Huffman self-synchronization. Returns a bit position
  /// >= Boundary (clamped to the stream length).
  int64_t predictSyncPoint(const BitReader &In, int64_t Boundary,
                           int64_t OverlapBits) const;

private:
  struct Node {
    int32_t Child[2]; // node index, or -1
    int32_t Symbol;   // leaf symbol, or -1
  };
  std::vector<Node> Nodes;
  int32_t Root = -1;
};

/// A table-driven decoder: decodes most codewords with a single W-bit
/// lookup (W = min(maxCodeLength, 12)), falling back to the bit-tree for
/// longer codes and near the end of the stream. Produces bit-identical
/// results to Decoder (tested); used where decode throughput matters.
class TableDecoder {
public:
  explicit TableDecoder(const HuffmanCode &Code);

  /// Same contract as Decoder::decodeRange.
  int64_t decodeRange(const BitReader &In, int64_t StartBit, int64_t StopBit,
                      std::vector<uint8_t> *Out) const;

  /// Same contract as Decoder::decodeAll.
  std::vector<uint8_t> decodeAll(const BitReader &In,
                                 int64_t NumSymbols) const;

  /// Same contract as Decoder::predictSyncPoint.
  int64_t predictSyncPoint(const BitReader &In, int64_t Boundary,
                           int64_t OverlapBits) const;

  unsigned lookupBits() const { return Width; }

private:
  struct Entry {
    int16_t Symbol = -1; // -1: escape to the tree walk
    uint8_t Length = 0;
  };
  Decoder Slow;
  std::vector<Entry> Table; // 2^Width entries
  unsigned Width = 0;
};

} // namespace huffman
} // namespace specpar

#endif // SPECPAR_HUFFMAN_HUFFMAN_H
