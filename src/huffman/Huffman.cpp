//===- huffman/Huffman.cpp - Canonical Huffman codec ----------------------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//

#include "huffman/Huffman.h"

#include <algorithm>
#include <cassert>
#include <queue>

using namespace specpar;
using namespace specpar::huffman;

HuffmanCode HuffmanCode::fromData(const std::vector<uint8_t> &Data) {
  std::array<uint64_t, 256> Freq{};
  for (uint8_t B : Data)
    ++Freq[B];
  return fromFrequencies(Freq);
}

HuffmanCode
HuffmanCode::fromFrequencies(const std::array<uint64_t, 256> &Freq) {
  HuffmanCode Code;

  // Build the Huffman tree with a min-heap; ties broken by creation order
  // so the construction is deterministic.
  struct HeapNode {
    uint64_t Freq;
    uint32_t Order;
    int32_t Index;
  };
  struct HeapCmp {
    bool operator()(const HeapNode &A, const HeapNode &B) const {
      if (A.Freq != B.Freq)
        return A.Freq > B.Freq;
      return A.Order > B.Order;
    }
  };
  struct TreeNode {
    int32_t Child[2] = {-1, -1};
    int32_t Symbol = -1;
  };

  std::vector<TreeNode> Tree;
  std::priority_queue<HeapNode, std::vector<HeapNode>, HeapCmp> Heap;
  uint32_t Order = 0;
  for (unsigned S = 0; S < 256; ++S) {
    if (Freq[S] == 0)
      continue;
    TreeNode Leaf;
    Leaf.Symbol = static_cast<int32_t>(S);
    Tree.push_back(Leaf);
    Heap.push(HeapNode{Freq[S], Order++,
                       static_cast<int32_t>(Tree.size()) - 1});
    ++Code.NumSymbols;
  }
  if (Code.NumSymbols == 0)
    return Code;
  if (Code.NumSymbols == 1) {
    // A degenerate alphabet still needs one bit per symbol so that the bit
    // stream has positive length.
    for (unsigned S = 0; S < 256; ++S)
      if (Freq[S] != 0) {
        Code.Lengths[S] = 1;
        Code.Bits[S] = 0;
      }
    Code.MaxLength = 1;
    return Code;
  }

  while (Heap.size() > 1) {
    HeapNode A = Heap.top();
    Heap.pop();
    HeapNode B = Heap.top();
    Heap.pop();
    TreeNode Parent;
    Parent.Child[0] = A.Index;
    Parent.Child[1] = B.Index;
    Tree.push_back(Parent);
    Heap.push(HeapNode{A.Freq + B.Freq, Order++,
                       static_cast<int32_t>(Tree.size()) - 1});
  }

  // Depth-first walk assigns code lengths.
  struct WorkItem {
    int32_t Node;
    uint8_t Depth;
  };
  std::vector<WorkItem> Work{{Heap.top().Index, 0}};
  while (!Work.empty()) {
    WorkItem W = Work.back();
    Work.pop_back();
    const TreeNode &N = Tree[W.Node];
    if (N.Symbol >= 0) {
      Code.Lengths[N.Symbol] = W.Depth;
      Code.MaxLength = std::max<unsigned>(Code.MaxLength, W.Depth);
      continue;
    }
    Work.push_back({N.Child[0], static_cast<uint8_t>(W.Depth + 1)});
    Work.push_back({N.Child[1], static_cast<uint8_t>(W.Depth + 1)});
  }

  // Canonical assignment: symbols sorted by (length, symbol value).
  std::vector<unsigned> Symbols;
  for (unsigned S = 0; S < 256; ++S)
    if (Code.Lengths[S] != 0)
      Symbols.push_back(S);
  std::sort(Symbols.begin(), Symbols.end(), [&](unsigned A, unsigned B) {
    if (Code.Lengths[A] != Code.Lengths[B])
      return Code.Lengths[A] < Code.Lengths[B];
    return A < B;
  });
  uint64_t NextCode = 0;
  unsigned PrevLen = 0;
  for (unsigned S : Symbols) {
    unsigned Len = Code.Lengths[S];
    NextCode <<= (Len - PrevLen);
    Code.Bits[S] = NextCode++;
    PrevLen = Len;
  }
  return Code;
}

Encoded specpar::huffman::encode(const std::vector<uint8_t> &Data) {
  Encoded E;
  E.Code = HuffmanCode::fromData(Data);
  BitWriter W;
  for (uint8_t B : Data)
    W.writeBits(E.Code.codeBits(B), E.Code.codeLength(B));
  E.NumBits = W.numBits();
  E.Bytes = W.takeBytes();
  E.NumSymbols = static_cast<int64_t>(Data.size());
  return E;
}

Decoder::Decoder(const HuffmanCode &Code) {
  if (Code.NumSymbols == 0)
    return;
  Root = 0;
  Nodes.push_back(Node{{-1, -1}, -1});
  for (unsigned S = 0; S < 256; ++S) {
    unsigned Len = Code.Lengths[S];
    if (Len == 0)
      continue;
    int32_t Cur = Root;
    for (unsigned I = Len; I-- > 0;) {
      int Bit = (Code.Bits[S] >> I) & 1;
      if (Nodes[Cur].Child[Bit] < 0) {
        Nodes[Cur].Child[Bit] = static_cast<int32_t>(Nodes.size());
        Nodes.push_back(Node{{-1, -1}, -1});
      }
      Cur = Nodes[Cur].Child[Bit];
    }
    Nodes[Cur].Symbol = static_cast<int32_t>(S);
  }
}

int64_t Decoder::decodeRange(const BitReader &In, int64_t StartBit,
                             int64_t StopBit, std::vector<uint8_t> *Out) const {
  assert(Root >= 0 && "decoding with an empty code");
  int64_t Pos = StartBit;
  while (Pos < StopBit && Pos < In.numBits()) {
    int32_t Cur = Root;
    while (Nodes[Cur].Symbol < 0) {
      if (Pos >= In.numBits())
        return -1; // Stream ended inside a codeword: desynchronized.
      int Bit = In.bitAt(Pos) ? 1 : 0;
      ++Pos;
      Cur = Nodes[Cur].Child[Bit];
      if (Cur < 0)
        return -1; // No such codeword (possible on desynchronized decodes
                   // of degenerate trees).
    }
    if (Out)
      Out->push_back(static_cast<uint8_t>(Nodes[Cur].Symbol));
  }
  return Pos;
}

std::vector<uint8_t> Decoder::decodeAll(const BitReader &In,
                                        int64_t NumSymbols) const {
  std::vector<uint8_t> Out;
  if (In.numBits() == 0)
    return Out;
  Out.reserve(static_cast<size_t>(NumSymbols));
  int64_t End = decodeRange(In, 0, In.numBits(), &Out);
  assert(End == In.numBits() && "sequential decode must consume everything");
  (void)End;
  assert(static_cast<int64_t>(Out.size()) == NumSymbols &&
         "sequential decode must produce every symbol");
  return Out;
}

int64_t Decoder::predictSyncPoint(const BitReader &In, int64_t Boundary,
                                  int64_t OverlapBits) const {
  if (Boundary <= 0)
    return 0;
  if (Boundary >= In.numBits())
    return In.numBits();
  int64_t From = Boundary - OverlapBits;
  if (From < 0)
    From = 0;
  int64_t Sync = decodeRange(In, From, Boundary, nullptr);
  if (Sync < 0)
    return In.numBits();
  return Sync;
}

//===----------------------------------------------------------------------===//
// TableDecoder
//===----------------------------------------------------------------------===//

TableDecoder::TableDecoder(const HuffmanCode &Code) : Slow(Code) {
  if (Code.numSymbols() == 0)
    return;
  Width = std::min(12u, std::max(1u, Code.maxCodeLength()));
  Table.assign(size_t(1) << Width, Entry{});
  for (unsigned S = 0; S < 256; ++S) {
    unsigned Len = Code.codeLength(static_cast<uint8_t>(S));
    if (Len == 0 || Len > Width)
      continue;
    uint64_t Prefix = Code.codeBits(static_cast<uint8_t>(S))
                      << (Width - Len);
    for (uint64_t Suffix = 0; Suffix < (uint64_t(1) << (Width - Len));
         ++Suffix) {
      Entry &E = Table[Prefix | Suffix];
      E.Symbol = static_cast<int16_t>(S);
      E.Length = static_cast<uint8_t>(Len);
    }
  }
}

int64_t TableDecoder::decodeRange(const BitReader &In, int64_t StartBit,
                                  int64_t StopBit,
                                  std::vector<uint8_t> *Out) const {
  int64_t Pos = StartBit;
  const int64_t NumBits = In.numBits();
  while (Pos < StopBit && Pos < NumBits) {
    if (Pos + static_cast<int64_t>(Width) <= NumBits) {
      // Fast path: peek Width bits and look the codeword up.
      uint64_t Peek = 0;
      for (unsigned I = 0; I < Width; ++I)
        Peek = (Peek << 1) | (In.bitAt(Pos + I) ? 1 : 0);
      const Entry &E = Table[Peek];
      if (E.Symbol >= 0) {
        if (Out)
          Out->push_back(static_cast<uint8_t>(E.Symbol));
        Pos += E.Length;
        continue;
      }
      // Escape: a code longer than Width — one tree-walked codeword.
    }
    // Slow path (long code or stream tail): exactly one codeword.
    int64_t Next = Slow.decodeRange(In, Pos, Pos + 1, Out);
    if (Next < 0)
      return -1;
    Pos = Next;
  }
  return Pos;
}

std::vector<uint8_t> TableDecoder::decodeAll(const BitReader &In,
                                             int64_t NumSymbols) const {
  std::vector<uint8_t> Out;
  if (In.numBits() == 0)
    return Out;
  Out.reserve(static_cast<size_t>(NumSymbols));
  int64_t End = decodeRange(In, 0, In.numBits(), &Out);
  assert(End == In.numBits() && "sequential decode must consume everything");
  (void)End;
  assert(static_cast<int64_t>(Out.size()) == NumSymbols &&
         "sequential decode must produce every symbol");
  return Out;
}

int64_t TableDecoder::predictSyncPoint(const BitReader &In, int64_t Boundary,
                                       int64_t OverlapBits) const {
  if (Boundary <= 0)
    return 0;
  if (Boundary >= In.numBits())
    return In.numBits();
  int64_t From = Boundary - OverlapBits;
  if (From < 0)
    From = 0;
  int64_t Sync = decodeRange(In, From, Boundary, nullptr);
  if (Sync < 0)
    return In.numBits();
  return Sync;
}
