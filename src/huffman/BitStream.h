//===- huffman/BitStream.h - MSB-first bit streams --------------*- C++ -*-===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MSB-first bit stream containers. The reader supports random access by
/// bit index, which is what lets the speculative Huffman decoder start a
/// segment at an arbitrary predicted bit position.
///
//===----------------------------------------------------------------------===//

#ifndef SPECPAR_HUFFMAN_BITSTREAM_H
#define SPECPAR_HUFFMAN_BITSTREAM_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace specpar {
namespace huffman {

/// Append-only MSB-first bit writer.
class BitWriter {
public:
  /// Appends the low \p Count bits of \p Bits, most significant first.
  void writeBits(uint64_t Bits, unsigned Count) {
    assert(Count <= 64 && "too many bits");
    for (unsigned I = Count; I-- > 0;)
      writeBit((Bits >> I) & 1);
  }

  /// Appends a single bit.
  void writeBit(bool Bit) {
    unsigned Offset = NumBits % 8;
    if (Offset == 0)
      Bytes.push_back(0);
    if (Bit)
      Bytes.back() |= static_cast<uint8_t>(1u << (7 - Offset));
    ++NumBits;
  }

  int64_t numBits() const { return NumBits; }
  const std::vector<uint8_t> &bytes() const { return Bytes; }
  std::vector<uint8_t> takeBytes() { return std::move(Bytes); }

private:
  std::vector<uint8_t> Bytes;
  int64_t NumBits = 0;
};

/// Random-access MSB-first bit reader over an external byte buffer.
class BitReader {
public:
  BitReader(const uint8_t *Data, int64_t NumBits)
      : Data(Data), NumBits(NumBits) {}
  BitReader(const std::vector<uint8_t> &Bytes, int64_t NumBits)
      : BitReader(Bytes.data(), NumBits) {}

  int64_t numBits() const { return NumBits; }

  /// The bit at absolute index \p Pos.
  bool bitAt(int64_t Pos) const {
    assert(Pos >= 0 && Pos < NumBits && "bit index out of range");
    return (Data[Pos >> 3] >> (7 - (Pos & 7))) & 1;
  }

private:
  const uint8_t *Data;
  int64_t NumBits;
};

} // namespace huffman
} // namespace specpar

#endif // SPECPAR_HUFFMAN_BITSTREAM_H
