//===- tests/hotpath_test.cpp - Lock-free hot path stress tests -----------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Stress and contract tests for the lock-free hot path: the Chase–Lev
// stealing deque (growth and index wraparound under concurrent thieves),
// the executor's steal storm with concurrent helping re-entry, TaskRef's
// small-buffer allocation contract, the adaptive chunk autotuner, and —
// the headline perf contract — zero steady-state heap allocations per
// chunk in a speculative run (global operator new/delete counting hooks).
//
// Runs under -DSPECPAR_SANITIZE=thread and address (the sanitize-smoke
// CTest label): the deque and eventcount memory orders are chosen to be
// TSan-provable, and this binary is the proof obligation.
//
//===----------------------------------------------------------------------===//

#include "runtime/ChaseLevDeque.h"
#include "runtime/EventCount.h"
#include "runtime/SpecExecutor.h"
#include "runtime/Speculation.h"
#include "runtime/TaskRef.h"
#include "runtime/Telemetry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

using namespace specpar::rt;

//===----------------------------------------------------------------------===//
// Global allocation counting hooks. Counting is off by default (gtest and
// the runtime may allocate freely); tests turn it on around a window and
// read the delta. Thread-safe: any thread's allocation counts.
//===----------------------------------------------------------------------===//

namespace {
std::atomic<bool> GCountAllocs{false};
std::atomic<int64_t> GAllocCount{0};

void *countedAlloc(std::size_t Size) {
  if (GCountAllocs.load(std::memory_order_relaxed))
    GAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (Size == 0)
    Size = 1;
  if (void *P = std::malloc(Size))
    return P;
  throw std::bad_alloc();
}
} // namespace

void *operator new(std::size_t Size) { return countedAlloc(Size); }
void *operator new[](std::size_t Size) { return countedAlloc(Size); }
void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }

namespace {

int64_t allocsSinceMark(int64_t Mark) {
  return GAllocCount.load(std::memory_order_relaxed) - Mark;
}

//===----------------------------------------------------------------------===//
// ChaseLevDeque
//===----------------------------------------------------------------------===//

TEST(ChaseLevDeque, OwnerLifoOrderAndGrowth) {
  ChaseLevDeque<int64_t> D(/*InitialCapacity=*/2);
  const int64_t N = 1000;
  for (int64_t I = 0; I < N; ++I)
    D.push(I);
  EXPECT_GE(D.grows(), 1u);
  EXPECT_GE(D.capacity(), static_cast<size_t>(N));
  // Owner pops are LIFO.
  for (int64_t I = N - 1; I >= 0; --I) {
    int64_t V = -1;
    ASSERT_TRUE(D.pop(V));
    EXPECT_EQ(V, I);
  }
  int64_t V = -1;
  EXPECT_FALSE(D.pop(V));
}

TEST(ChaseLevDeque, StealIsFifoFromTheTop) {
  ChaseLevDeque<int64_t> D;
  for (int64_t I = 0; I < 10; ++I)
    D.push(I);
  for (int64_t I = 0; I < 10; ++I) {
    int64_t V = -1;
    ASSERT_TRUE(D.steal(V));
    EXPECT_EQ(V, I);
  }
  int64_t V = -1;
  EXPECT_FALSE(D.steal(V));
}

// The ABA/wraparound test: a tiny ring forced through many index
// wraparounds and several growths while two thieves race the owner. Every
// pushed value must be consumed exactly once — a stale ring read whose
// CAS wrongly succeeded, or a lost element across grow(), shows up as a
// duplicate or a hole.
TEST(ChaseLevDeque, WraparoundUnderConcurrentStealsLosesNothing) {
  ChaseLevDeque<int64_t> D(/*InitialCapacity=*/2);
  const int64_t N = 60000;
  std::vector<std::atomic<int>> Seen(static_cast<size_t>(N));
  for (auto &S : Seen)
    S.store(0, std::memory_order_relaxed);
  std::atomic<int64_t> Consumed{0};
  std::atomic<bool> Done{false};

  auto Consume = [&](int64_t V) {
    Seen[static_cast<size_t>(V)].fetch_add(1, std::memory_order_relaxed);
    Consumed.fetch_add(1, std::memory_order_relaxed);
  };

  std::vector<std::thread> Thieves;
  for (int TIdx = 0; TIdx < 2; ++TIdx)
    Thieves.emplace_back([&] {
      int64_t V = -1;
      while (!Done.load(std::memory_order_acquire)) {
        if (D.steal(V))
          Consume(V);
        else
          std::this_thread::yield();
      }
      // Final sweep after the owner stopped.
      while (D.steal(V))
        Consume(V);
    });

  // Owner: push two, pop one — Bottom/Top advance monotonically, so the
  // small ring wraps thousands of times while thieves chase Top.
  int64_t Next = 0;
  while (Next < N) {
    D.push(Next++);
    if (Next < N)
      D.push(Next++);
    int64_t V = -1;
    if (D.pop(V))
      Consume(V);
  }
  Done.store(true, std::memory_order_release);
  for (auto &Th : Thieves)
    Th.join();
  // Owner drains what the thieves left.
  int64_t V = -1;
  while (D.pop(V))
    Consume(V);

  EXPECT_EQ(Consumed.load(), N);
  for (int64_t I = 0; I < N; ++I)
    ASSERT_EQ(Seen[static_cast<size_t>(I)].load(), 1) << "value " << I;
}

//===----------------------------------------------------------------------===//
// TaskRef
//===----------------------------------------------------------------------===//

TEST(TaskRef, SmallCapturesAreInlineAndAllocationFree) {
  int64_t A = 0, B = 0;
  int64_t *PA = &A, *PB = &B;
  const int64_t Mark = GAllocCount.load();
  GCountAllocs.store(true);
  {
    TaskRef T([PA, PB] {
      *PA = 1;
      *PB = 2;
    });
    TaskRef T2(std::move(T));
    T2.run();
  }
  GCountAllocs.store(false);
  EXPECT_EQ(allocsSinceMark(Mark), 0);
  EXPECT_EQ(A, 1);
  EXPECT_EQ(B, 2);
}

TEST(TaskRef, OversizedCapturesFallBackToOneHeapAllocation) {
  struct Big {
    char Pad[96];
  };
  Big Payload{};
  Payload.Pad[0] = 7;
  std::atomic<int> Ran{0};
  const int64_t Mark = GAllocCount.load();
  GCountAllocs.store(true);
  {
    TaskRef T([Payload, &Ran] { Ran += Payload.Pad[0]; });
    T.run();
  }
  GCountAllocs.store(false);
  EXPECT_EQ(allocsSinceMark(Mark), 1);
  EXPECT_EQ(Ran.load(), 7);
}

//===----------------------------------------------------------------------===//
// Executor steal storm
//===----------------------------------------------------------------------===//

// One worker's deque is loaded with a burst of tasks while the producing
// task busy-waits (without helping), so every task must be *stolen* — by
// the other workers and by the main thread's concurrent tryRunOneTask()
// helping re-entry. Checks full conservation (every task runs exactly
// once) and that the pop-path accounting adds up.
TEST(ExecutorStealStorm, BurstFromOneWorkerIsFullyStolen) {
  SpecExecutor Ex(4);
  const ExecutorStats Before = Ex.stats();
  const int N = 4000;
  std::atomic<int> Ran{0};
  std::atomic<bool> ProducerStarted{false};
  std::atomic<bool> ProducerDone{false};

  Ex.submit([&Ex, &Ran, &ProducerStarted, &ProducerDone, N] {
    ProducerStarted.store(true, std::memory_order_release);
    for (int I = 0; I < N; ++I)
      Ex.submit([&Ran] { Ran.fetch_add(1, std::memory_order_relaxed); });
    // Busy-wait without helping: this worker never pops its own deque, so
    // thieves drain all N tasks.
    const auto Deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (Ran.load(std::memory_order_relaxed) < N &&
           std::chrono::steady_clock::now() < Deadline)
      std::this_thread::yield();
    ProducerDone.store(true, std::memory_order_release);
  });

  // Wait (without helping) until a *worker* has claimed the producer —
  // helping too early would run the producer on this non-worker thread,
  // routing the burst through the injection ring instead of a deque.
  while (!ProducerStarted.load(std::memory_order_acquire))
    std::this_thread::yield();
  // Main thread helps concurrently — non-worker helping steals.
  while (!ProducerDone.load(std::memory_order_acquire)) {
    if (!Ex.tryRunOneTask())
      std::this_thread::yield();
  }
  Ex.waitIdle();
  EXPECT_EQ(Ran.load(), N);

  const ExecutorStats D = Ex.stats() - Before;
  // N burst tasks + the producer task itself.
  EXPECT_EQ(D.Submits, static_cast<uint64_t>(N) + 1);
  // Every executed task was popped exactly once, via exactly one path.
  EXPECT_EQ(D.OwnPops + D.InjectionPops + D.Steals,
            static_cast<uint64_t>(N) + 1);
  // The producer never popped: all N burst tasks were stolen.
  EXPECT_GE(D.Steals, static_cast<uint64_t>(N));
}

// Nested help() re-entry under the storm: tasks themselves call
// tryRunOneTask() while the queues churn.
TEST(ExecutorStealStorm, HelpingReentryInsideTasksIsSafe) {
  SpecExecutor Ex(3);
  const int N = 2000;
  std::atomic<int> Ran{0};
  for (int I = 0; I < N; ++I)
    Ex.submit([&Ex, &Ran] {
      Ran.fetch_add(1, std::memory_order_relaxed);
      // Re-entrant helping from inside a task.
      Ex.tryRunOneTask();
    });
  Ex.waitIdle();
  EXPECT_EQ(Ran.load(), N);
}

//===----------------------------------------------------------------------===//
// Zero steady-state allocations per chunk
//===----------------------------------------------------------------------===//

// The headline contract of the pooled attempt lifecycle: once a run is in
// steady state (pools warmed, executor rings allocated), iterating 10^4+
// chunks performs zero heap allocations — attempts recycle through the
// per-run pool, thunks fit TaskRef's inline storage, and the executor's
// injection ring and task slots recirculate.
TEST(ZeroAlloc, SteadyStateChunkIterationDoesNotTouchTheHeap) {
  SpecExecutor Ex(2);
  const int64_t N = 20000;

  auto RunOnce = [&] {
    return Speculation::iterateChunked<int64_t>(
        0, N, /*ChunkSize=*/4,
        [](int64_t I, int64_t Acc) { return Acc + I; },
        [](int64_t I) { return I * (I - 1) / 2; },
        SpecConfig().executor(Ex));
  };
  // Warm-up run: slab allocations, ring growth, lazy libc init.
  const SpecResult<int64_t> Warm = RunOnce();
  EXPECT_EQ(Warm.Value, N * (N - 1) / 2);

  // Measured run: count allocations over the middle 60% of the
  // iteration space (the engine's own setup/teardown sits outside the
  // window).
  const int64_t Mark = GAllocCount.load();
  auto R = Speculation::iterateChunked<int64_t>(
      0, N, /*ChunkSize=*/4,
      [N](int64_t I, int64_t Acc) {
        if (I == N / 5)
          GCountAllocs.store(true, std::memory_order_relaxed);
        if (I == (4 * N) / 5)
          GCountAllocs.store(false, std::memory_order_relaxed);
        return Acc + I;
      },
      [](int64_t I) { return I * (I - 1) / 2; }, SpecConfig().executor(Ex));
  GCountAllocs.store(false, std::memory_order_relaxed);
  EXPECT_EQ(R.Value, N * (N - 1) / 2);
  EXPECT_EQ(R.Stats.Tasks, N / 4);
  EXPECT_EQ(allocsSinceMark(Mark), 0)
      << "steady-state chunk iteration allocated";
}

//===----------------------------------------------------------------------===//
// Autotuner
//===----------------------------------------------------------------------===//

TEST(Autotune, GrowsChunksWhenBodiesUndershootTheTarget) {
  Tracer Tr;
  const int64_t N = 8000;
  // Trivial bodies against a 10ms target: every wave undershoots, so the
  // controller doubles the chunk until its ceiling; the result must stay
  // exact and at least one Autotune event must fire.
  auto R = Speculation::iterateChunked<int64_t>(
      0, N, /*ChunkSize=*/1,
      [](int64_t I, int64_t Acc) { return Acc + I; },
      [](int64_t I) { return I * (I - 1) / 2; },
      SpecConfig().threads(2).autotune(/*TargetChunkMicros=*/10000).trace(
          &Tr));
  EXPECT_EQ(R.Value, N * (N - 1) / 2);
  int64_t AutotuneEvents = 0;
  int64_t LastSize = 1;
  for (const SpecEvent &E : Tr.snapshot())
    if (E.Kind == SpecEventKind::Autotune) {
      ++AutotuneEvents;
      EXPECT_GT(E.Index, LastSize) << "undershoot must only grow the chunk";
      LastSize = E.Index;
    }
  EXPECT_GE(AutotuneEvents, 1);
  // Fewer, larger segments: far fewer tasks than one per initial chunk.
  EXPECT_LT(R.Stats.Tasks, N / 2);
  EXPECT_GT(R.Stats.Tasks, 0);
}

TEST(Autotune, OffByDefaultKeepsTheFixedChunkGrid) {
  const int64_t N = 640;
  auto R = Speculation::iterateChunked<int64_t>(
      0, N, /*ChunkSize=*/8, [](int64_t I, int64_t Acc) { return Acc + I; },
      [](int64_t I) { return I * (I - 1) / 2; }, SpecConfig().threads(2));
  EXPECT_EQ(R.Value, N * (N - 1) / 2);
  // Exactly one task per fixed chunk and one prediction per boundary.
  EXPECT_EQ(R.Stats.Tasks, N / 8);
  EXPECT_EQ(R.Stats.Predictions, N / 8 - 1);
  EXPECT_EQ(R.Stats.Mispredictions, 0);
}

TEST(Autotune, NeverAppliesToPlainIterate) {
  Tracer Tr;
  const int64_t N = 200;
  auto R = Speculation::iterate<int64_t>(
      0, N, [](int64_t I, int64_t Acc) { return Acc + I; },
      [](int64_t I) { return I * (I - 1) / 2; },
      SpecConfig().threads(2).autotune(10000).trace(&Tr));
  EXPECT_EQ(R.Value, N * (N - 1) / 2);
  for (const SpecEvent &E : Tr.snapshot())
    EXPECT_NE(E.Kind, SpecEventKind::Autotune);
  // Per-iteration granularity is preserved.
  EXPECT_EQ(R.Stats.Predictions, N - 1);
}

TEST(Autotune, ShrinksChunksUnderSustainedMisprediction) {
  // Every boundary mispredicts, so the run degenerates into thousands of
  // re-executed chunk-1 segments — size the per-thread event rings so the
  // early (shrinking) Autotune events survive until snapshot().
  Tracer Tr(1 << 18);
  const int64_t N = 4096;
  // A predictor that is wrong at every boundary: bad-rate 100% per wave,
  // so the controller halves (already at the floor of 1 here — use a
  // larger initial chunk to observe shrinking).
  auto R = Speculation::iterateChunked<int64_t>(
      0, N, /*ChunkSize=*/64,
      [](int64_t, int64_t Acc) { return Acc + 1; }, [](int64_t) {
        return static_cast<int64_t>(-1); // always wrong (true acc is >= 0)
      },
      SpecConfig().threads(2).autotune(/*TargetChunkMicros=*/1).trace(&Tr));
  EXPECT_EQ(R.Value, -1 + N); // Predictor(0) = -1 seeds the fold
  bool SawShrink = false;
  int64_t Prev = 64;
  for (const SpecEvent &E : Tr.snapshot())
    if (E.Kind == SpecEventKind::Autotune) {
      if (E.Index < Prev)
        SawShrink = true;
      Prev = E.Index;
    }
  EXPECT_TRUE(SawShrink);
}

//===----------------------------------------------------------------------===//
// EventCount
//===----------------------------------------------------------------------===//

TEST(EventCount, WakesParkedWaiter) {
  EventCount EC;
  std::atomic<bool> Flag{false};
  std::thread Waiter([&] {
    while (!Flag.load(std::memory_order_seq_cst)) {
      const uint64_t Ticket = EC.prepareWait();
      if (Flag.load(std::memory_order_seq_cst)) {
        EC.cancelWait();
        return;
      }
      EC.wait(Ticket);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  Flag.store(true, std::memory_order_seq_cst);
  EC.notifyAll();
  Waiter.join();
  SUCCEED();
}

TEST(EventCount, TimedWaitReturnsWithoutNotify) {
  EventCount EC;
  const uint64_t Ticket = EC.prepareWait();
  const auto T0 = std::chrono::steady_clock::now();
  const bool Notified = EC.waitFor(Ticket, std::chrono::milliseconds(20));
  EXPECT_FALSE(Notified);
  EXPECT_GE(std::chrono::steady_clock::now() - T0,
            std::chrono::milliseconds(15));
}

} // namespace
