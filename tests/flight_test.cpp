//===- tests/flight_test.cpp - Flight recorder & causal tracing tests -----===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Tests for the runtime observability layer: the always-on
/// `rt::FlightRecorder` (retention window, atomic anomaly dumps, dump
/// rate-limiting), the `Tracer` additions it builds on (explicit
/// per-ring drop counters, `forwardTo` tee, attempt-id namespacing),
/// and `TraceContext` stamping on recorded events.
///
//===----------------------------------------------------------------------===//

#include "runtime/FlightRecorder.h"
#include "runtime/Speculation.h"
#include "support/Json.h"

#include "gtest/gtest.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace specpar;
using namespace specpar::rt;
namespace fs = std::filesystem;

namespace {

/// A fresh scratch directory under the system temp dir, removed on
/// scope exit so test runs never accrete dump files.
struct ScratchDir {
  fs::path Path;
  explicit ScratchDir(const std::string &Tag) {
    Path = fs::temp_directory_path() /
           ("specpar-flight-test-" + Tag + "-" +
            std::to_string(static_cast<unsigned long long>(::getpid())));
    fs::remove_all(Path);
  }
  ~ScratchDir() {
    std::error_code EC;
    fs::remove_all(Path, EC);
  }
};

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

//===----------------------------------------------------------------------===//
// Tracer additions
//===----------------------------------------------------------------------===//

TEST(Tracer, ExplicitDropCountersSurviveOverwrite) {
  Tracer T(/*RingCapacity=*/16);
  for (int I = 0; I < 40; ++I)
    T.record(SpecEventKind::Dispatch, I, /*AttemptId=*/1);
  EXPECT_EQ(T.recordedEvents(), 40u);
  EXPECT_EQ(T.droppedEvents(), 24u); // 40 recorded - 16 retained
  EXPECT_EQ(T.snapshot().size(), 16u);
  // The loss is visible to a human reader too, with a per-ring split.
  const std::string S = T.summary();
  EXPECT_NE(S.find("dropped=24"), std::string::npos) << S;
  EXPECT_NE(S.find("t0=24"), std::string::npos) << S;
}

TEST(Tracer, ForwardToTeesEveryEventIntoTheSink) {
  Tracer Primary(64), Sink(64);
  Primary.record(SpecEventKind::Dispatch, 0, 1);
  Primary.forwardTo(&Sink);
  Primary.record(SpecEventKind::Start, 1, 2, TraceContext{7, 3});
  Primary.forwardTo(nullptr);
  Primary.record(SpecEventKind::Finish, 2, 2);

  EXPECT_EQ(Primary.snapshot().size(), 3u);
  // Only the event recorded inside the tee window reached the sink,
  // with its trace context intact (the sink keeps its own Seq domain).
  std::vector<SpecEvent> Got = Sink.snapshot();
  ASSERT_EQ(Got.size(), 1u);
  EXPECT_EQ(Got[0].Kind, SpecEventKind::Start);
  EXPECT_EQ(Got[0].JobId, 7u);
  EXPECT_EQ(Got[0].SpanId, 3u);
}

TEST(Tracer, AttemptIdBaseNamespacesIds) {
  const uint64_t Base = uint64_t(3) << 48;
  Tracer Plain(64), Offset(64, Base);
  EXPECT_EQ(Plain.newAttemptId(), 1u);
  EXPECT_EQ(Offset.newAttemptId(), Base + 1);
  EXPECT_EQ(Offset.newAttemptId(), Base + 2);
}

TEST(Tracer, TraceContextIsStampedOnRuntimeEvents) {
  // Drive a real speculative run with a TraceContext set: every event
  // the runtime records must carry it.
  auto Ex = SpecExecutor::create(2);
  Tracer T;
  TraceContext Ctx{42, 2};
  SpecConfig Cfg;
  Cfg.executor(Ex).trace(&T).traceContext(Ctx);
  auto R = Speculation::iterate<int64_t>(
      0, 64, [](int64_t I, int64_t A) { return A + I; },
      [](int64_t I) { return I * (I - 1) / 2; }, Cfg);
  EXPECT_EQ(R.Value, 64 * 63 / 2);
  std::vector<SpecEvent> Events = T.snapshot();
  ASSERT_FALSE(Events.empty());
  for (const SpecEvent &E : Events) {
    EXPECT_EQ(E.JobId, 42u);
    EXPECT_EQ(E.SpanId, 2u);
  }
}

//===----------------------------------------------------------------------===//
// FlightRecorder
//===----------------------------------------------------------------------===//

TEST(FlightRecorder, RetentionWindowAgesOutOldEvents) {
  FlightRecorder::Options O;
  O.Retain = std::chrono::milliseconds(50);
  FlightRecorder FR(O);
  FR.tracer().record(SpecEventKind::Dispatch, 0, 1);
  EXPECT_EQ(FR.recentEvents().size(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  FR.tracer().record(SpecEventKind::Finish, 1, 1);
  // The first event fell out of the window; the fresh one remains.
  std::vector<SpecEvent> Recent = FR.recentEvents();
  ASSERT_EQ(Recent.size(), 1u);
  EXPECT_EQ(Recent[0].Kind, SpecEventKind::Finish);
}

TEST(FlightRecorder, DumpWritesValidChromeTraceAndSummary) {
  ScratchDir Dir("dump");
  FlightRecorder::Options O;
  O.DumpDir = Dir.Path.string();
  O.Label = "testshard";
  FlightRecorder FR(O);
  const uint64_t AId = FR.tracer().newAttemptId();
  FR.tracer().record(SpecEventKind::Start, 5, AId, TraceContext{9, 1});
  FR.tracer().record(SpecEventKind::Finish, 5, AId, TraceContext{9, 1});

  FlightRecorder::DumpResult D = FR.dump("unit-test", "why not");
  ASSERT_TRUE(D.Written);
  EXPECT_EQ(FR.dumpsWritten(), 1u);
  EXPECT_EQ(FR.dumpRequests(), 1u);

  const std::string Trace = slurp(D.TracePath);
  std::string Err;
  EXPECT_TRUE(validateJson(Trace, &Err)) << Err;
  // The attempt pair renders as one duration slice carrying the job id.
  EXPECT_NE(Trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Trace.find("\"job\":9"), std::string::npos);
  const std::string Summary = slurp(D.SummaryPath);
  EXPECT_NE(Summary.find("reason=unit-test"), std::string::npos);
  EXPECT_NE(Summary.find("why not"), std::string::npos);
  // No temp files left behind by the atomic write.
  for (const auto &Entry : fs::directory_iterator(Dir.Path))
    EXPECT_EQ(Entry.path().filename().string().find(".tmp."),
              std::string::npos);
}

TEST(FlightRecorder, UnfinishedAttemptSurvivesIntoTheDump) {
  // The event a quarantine post-mortem is about — a Start whose Finish
  // never came — must not vanish from the export.
  ScratchDir Dir("open");
  FlightRecorder::Options O;
  O.DumpDir = Dir.Path.string();
  FlightRecorder FR(O);
  FR.tracer().record(SpecEventKind::Start, 3, 77, TraceContext{4, 1});
  FlightRecorder::DumpResult D = FR.dump("wedged");
  ASSERT_TRUE(D.Written);
  const std::string Trace = slurp(D.TracePath);
  std::string Err;
  EXPECT_TRUE(validateJson(Trace, &Err)) << Err;
  EXPECT_NE(Trace.find("unfinished"), std::string::npos) << Trace;
  EXPECT_NE(Trace.find("\"job\":4"), std::string::npos);
}

TEST(FlightRecorder, MinDumpGapRateLimitsAndCountsSuppressions) {
  ScratchDir Dir("gap");
  FlightRecorder::Options O;
  O.DumpDir = Dir.Path.string();
  O.MinDumpGap = std::chrono::hours(1);
  FlightRecorder FR(O);
  FR.tracer().record(SpecEventKind::Dispatch, 0, 1);
  EXPECT_TRUE(FR.dump("first").Written);
  EXPECT_FALSE(FR.dump("second").Written);
  EXPECT_EQ(FR.dumpRequests(), 2u);
  EXPECT_EQ(FR.dumpsWritten(), 1u);
  EXPECT_EQ(FR.dumpsSuppressed(), 1u);
}

TEST(FlightRecorder, NoDumpDirMeansInMemoryOnly) {
  FlightRecorder FR; // default options: no DumpDir
  FR.tracer().record(SpecEventKind::Dispatch, 0, 1);
  FlightRecorder::DumpResult D = FR.dump("anomaly");
  EXPECT_FALSE(D.Written);
  EXPECT_EQ(FR.dumpRequests(), 1u);
  EXPECT_EQ(FR.dumpsWritten(), 0u);
  // The window is still serviceable for /debug/trace-style reads.
  EXPECT_EQ(FR.recentEvents().size(), 1u);
}

} // namespace
