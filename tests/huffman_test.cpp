//===- tests/huffman_test.cpp - Huffman codec tests -----------------------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//

#include "huffman/Huffman.h"
#include "support/Rng.h"
#include "workloads/Datasets.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <numeric>

using namespace specpar;
using namespace specpar::huffman;
using namespace specpar::workloads;

namespace {

std::vector<uint8_t> bytesOf(const char *S) {
  return std::vector<uint8_t>(S, S + strlen(S));
}

TEST(HuffmanCode, KraftInequalityHolds) {
  std::vector<uint8_t> Data = bytesOf("abracadabra alakazam");
  HuffmanCode C = HuffmanCode::fromData(Data);
  double Kraft = 0;
  for (unsigned S = 0; S < 256; ++S)
    if (C.codeLength(static_cast<uint8_t>(S)) > 0)
      Kraft += std::pow(2.0, -double(C.codeLength(static_cast<uint8_t>(S))));
  EXPECT_DOUBLE_EQ(Kraft, 1.0) << "a full Huffman code is exactly Kraft-tight";
}

TEST(HuffmanCode, CanonicalCodesArePrefixFree) {
  std::vector<uint8_t> Data = generateHuffmanData(HuffmanFlavour::Text, 1,
                                                  4096);
  HuffmanCode C = HuffmanCode::fromData(Data);
  for (unsigned A = 0; A < 256; ++A) {
    unsigned LA = C.codeLength(static_cast<uint8_t>(A));
    if (LA == 0)
      continue;
    for (unsigned B = 0; B < 256; ++B) {
      if (A == B)
        continue;
      unsigned LB = C.codeLength(static_cast<uint8_t>(B));
      if (LB == 0 || LB < LA)
        continue;
      // A's code must not be a prefix of B's.
      uint64_t BPrefix = C.codeBits(static_cast<uint8_t>(B)) >> (LB - LA);
      EXPECT_NE(BPrefix, C.codeBits(static_cast<uint8_t>(A)))
          << "symbol " << A << " is a prefix of symbol " << B;
    }
  }
}

TEST(HuffmanCode, MoreFrequentSymbolsGetShorterCodes) {
  std::array<uint64_t, 256> Freq{};
  Freq['a'] = 1000;
  Freq['b'] = 100;
  Freq['c'] = 10;
  Freq['d'] = 1;
  HuffmanCode C = HuffmanCode::fromFrequencies(Freq);
  EXPECT_LE(C.codeLength('a'), C.codeLength('b'));
  EXPECT_LE(C.codeLength('b'), C.codeLength('c'));
  EXPECT_LE(C.codeLength('c'), C.codeLength('d'));
  EXPECT_EQ(C.numSymbols(), 4u);
}

TEST(HuffmanCode, SingleSymbolAlphabet) {
  std::vector<uint8_t> Data(100, 'x');
  Encoded E = encode(Data);
  EXPECT_EQ(E.NumBits, 100);
  Decoder D(E.Code);
  BitReader In(E.Bytes, E.NumBits);
  EXPECT_EQ(D.decodeAll(In, E.NumSymbols), Data);
}

TEST(Huffman, EmptyInput) {
  Encoded E = encode({});
  EXPECT_EQ(E.NumBits, 0);
  EXPECT_EQ(E.Code.numSymbols(), 0u);
}

class HuffmanRoundTrip
    : public ::testing::TestWithParam<std::tuple<HuffmanFlavour, size_t>> {};

TEST_P(HuffmanRoundTrip, EncodeDecodeIsIdentity) {
  auto [Flavour, Size] = GetParam();
  std::vector<uint8_t> Data = generateHuffmanData(Flavour, 99, Size);
  Encoded E = encode(Data);
  Decoder D(E.Code);
  BitReader In(E.Bytes, E.NumBits);
  EXPECT_EQ(D.decodeAll(In, E.NumSymbols), Data);
  // The encoding compresses skewed flavours.
  if (Flavour != HuffmanFlavour::Media && Size > 1000) {
    EXPECT_LT(E.NumBits, static_cast<int64_t>(8 * Size));
  }
}

INSTANTIATE_TEST_SUITE_P(
    FlavoursAndSizes, HuffmanRoundTrip,
    ::testing::Combine(::testing::ValuesIn(AllHuffmanFlavours),
                       ::testing::Values<size_t>(1, 17, 1000, 50000)));

/// Segmented decode with the *true* carried values equals sequential
/// decode: the correctness backbone of the speculative Huffman benchmark.
TEST(Huffman, SegmentedDecodeMatchesSequential) {
  std::vector<uint8_t> Data =
      generateHuffmanData(HuffmanFlavour::Text, 7, 20000);
  Encoded E = encode(Data);
  Decoder D(E.Code);
  BitReader In(E.Bytes, E.NumBits);
  std::vector<uint8_t> Seq = D.decodeAll(In, E.NumSymbols);

  for (int NumSegments : {1, 2, 3, 7, 16}) {
    std::vector<uint8_t> Out;
    int64_t Carried = 0;
    for (int I = 0; I < NumSegments; ++I) {
      int64_t SegEnd = (I + 1 == NumSegments)
                           ? E.NumBits
                           : E.NumBits * (I + 1) / NumSegments;
      Carried = D.decodeRange(In, Carried, SegEnd, &Out);
      ASSERT_GE(Carried, 0);
    }
    EXPECT_EQ(Out, Seq) << NumSegments << " segments";
    EXPECT_EQ(Carried, E.NumBits);
  }
}

TEST(Huffman, DecodeRangePastEndIsNoop) {
  std::vector<uint8_t> Data = bytesOf("hello hello hello");
  Encoded E = encode(Data);
  Decoder D(E.Code);
  BitReader In(E.Bytes, E.NumBits);
  std::vector<uint8_t> Out;
  EXPECT_EQ(D.decodeRange(In, E.NumBits, E.NumBits + 10, &Out), E.NumBits);
  EXPECT_TRUE(Out.empty());
}

/// The overlap predictor: with zero overlap it just proposes the boundary
/// itself; with a large overlap it converges to the true sync point.
TEST(Huffman, PredictorConvergesWithOverlap) {
  std::vector<uint8_t> Data =
      generateHuffmanData(HuffmanFlavour::Text, 21, 50000);
  Encoded E = encode(Data);
  Decoder D(E.Code);
  BitReader In(E.Bytes, E.NumBits);

  // True sync points at 32 equally spaced boundaries.
  int NumPoints = 32;
  int Correct = 0;
  for (int I = 1; I < NumPoints; ++I) {
    int64_t Boundary = E.NumBits * I / NumPoints;
    int64_t Truth = D.decodeRange(In, 0, Boundary, nullptr);
    int64_t Pred = D.predictSyncPoint(In, Boundary, /*OverlapBits=*/512);
    EXPECT_GE(Pred, Boundary);
    if (Pred == Truth)
      ++Correct;
  }
  // Text self-synchronizes readily; essentially all predictions hit.
  EXPECT_GE(Correct, NumPoints - 4);
}

TEST(Huffman, PredictorAccuracyGrowsWithOverlap) {
  std::vector<uint8_t> Data =
      generateHuffmanData(HuffmanFlavour::Media, 5, 60000);
  Encoded E = encode(Data);
  Decoder D(E.Code);
  BitReader In(E.Bytes, E.NumBits);

  auto AccuracyAt = [&](int64_t Overlap) {
    int NumPoints = 32, Correct = 0;
    for (int I = 1; I < NumPoints; ++I) {
      int64_t Boundary = E.NumBits * I / NumPoints;
      int64_t Truth = D.decodeRange(In, 0, Boundary, nullptr);
      if (D.predictSyncPoint(In, Boundary, Overlap) == Truth)
        ++Correct;
    }
    return Correct;
  };
  int A16 = AccuracyAt(16 * 8);
  int A512 = AccuracyAt(512 * 8);
  EXPECT_LE(A16, A512);
  EXPECT_GE(A512, 24) << "media must eventually self-synchronize";
}

/// The table-driven decoder is bit-identical to the reference tree
/// decoder on every flavour, size, and segmentation.
class TableDecoderEquiv
    : public ::testing::TestWithParam<std::tuple<HuffmanFlavour, size_t>> {};

TEST_P(TableDecoderEquiv, MatchesTreeDecoder) {
  auto [Flavour, Size] = GetParam();
  std::vector<uint8_t> Data = generateHuffmanData(Flavour, 321, Size);
  Encoded E = encode(Data);
  Decoder Tree(E.Code);
  TableDecoder Table(E.Code);
  BitReader In(E.Bytes, E.NumBits);
  EXPECT_EQ(Table.decodeAll(In, E.NumSymbols), Data);
  // Range decode agrees at every probed split, including desync starts.
  for (int64_t Start : {int64_t(0), E.NumBits / 3, E.NumBits / 2 + 1}) {
    std::vector<uint8_t> A, B;
    int64_t EndA = Tree.decodeRange(In, Start, E.NumBits, &A);
    int64_t EndB = Table.decodeRange(In, Start, E.NumBits, &B);
    EXPECT_EQ(EndA, EndB) << "start " << Start;
    EXPECT_EQ(A, B) << "start " << Start;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FlavoursAndSizes, TableDecoderEquiv,
    ::testing::Combine(::testing::ValuesIn(AllHuffmanFlavours),
                       ::testing::Values<size_t>(1, 500, 60000)));

TEST(TableDecoder, PredictSyncPointMatchesTreeDecoder) {
  std::vector<uint8_t> Data =
      generateHuffmanData(HuffmanFlavour::Text, 55, 40000);
  Encoded E = encode(Data);
  Decoder Tree(E.Code);
  TableDecoder Table(E.Code);
  BitReader In(E.Bytes, E.NumBits);
  for (int I = 1; I < 16; ++I) {
    int64_t Boundary = E.NumBits * I / 16;
    EXPECT_EQ(Table.predictSyncPoint(In, Boundary, 256),
              Tree.predictSyncPoint(In, Boundary, 256));
  }
}

TEST(TableDecoder, SingleSymbolAlphabet) {
  std::vector<uint8_t> Data(64, 'z');
  Encoded E = encode(Data);
  TableDecoder D(E.Code);
  BitReader In(E.Bytes, E.NumBits);
  EXPECT_EQ(D.decodeAll(In, E.NumSymbols), Data);
  EXPECT_EQ(D.lookupBits(), 1u);
}

} // namespace
