//===- tests/robustness_test.cpp - Fault injection & fallback tests -------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//
//
// The robustness layer: FaultPlan determinism, the exception contracts of
// user callbacks (predictor/comparator/finalizer), cooperative deadlines
// with SpecTimeoutError and the no-leaked-task drain guarantee, spurious
// cancellation safety, and the adaptive sequential fallback.
//
//===----------------------------------------------------------------------===//

#include "runtime/FaultPlan.h"
#include "runtime/Speculation.h"
#include "runtime/Telemetry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace specpar;
using namespace specpar::rt;

namespace {

/// Sequential oracle for the iterate sum used throughout: Acc starts at 0
/// and each iteration adds I.
int64_t sumOracle(int64_t N) { return N * (N - 1) / 2; }

/// Exact predictor for the sum loop (all predictions correct).
int64_t sumPredict(int64_t I) { return I * (I - 1) / 2; }

int countEvents(const std::vector<SpecEvent> &Events, SpecEventKind K) {
  int C = 0;
  for (const SpecEvent &E : Events)
    C += E.Kind == K;
  return C;
}

//===----------------------------------------------------------------------===//
// FaultPlan
//===----------------------------------------------------------------------===//

TEST(FaultPlan, UnarmedSitesNeverFireButCountProbes) {
  FaultPlan Plan(42);
  for (int I = 0; I < 1000; ++I)
    EXPECT_FALSE(Plan.shouldFire(FaultSite::BodyThrow));
  EXPECT_EQ(Plan.probes(FaultSite::BodyThrow), 1000u);
  EXPECT_EQ(Plan.fired(FaultSite::BodyThrow), 0u);
  EXPECT_EQ(Plan.totalFired(), 0u);
}

TEST(FaultPlan, DecisionSequenceIsDeterministicPerSeed) {
  auto Draw = [](uint64_t Seed, int N) {
    FaultPlan Plan(Seed);
    Plan.arm(FaultSite::BodyThrow, 0.3);
    std::vector<bool> Out;
    for (int I = 0; I < N; ++I)
      Out.push_back(Plan.shouldFire(FaultSite::BodyThrow));
    return Out;
  };
  EXPECT_EQ(Draw(7, 500), Draw(7, 500));
  EXPECT_NE(Draw(7, 500), Draw(8, 500));
}

TEST(FaultPlan, ArmingOneSiteNeverShiftsAnotherSitesSequence) {
  // Site sequences are independent: probing BodyThrow between the
  // ComparatorThrow probes, armed or not, must not change what the
  // ComparatorThrow probes decide.
  auto DrawCmp = [](bool AlsoArmBody) {
    FaultPlan Plan(99);
    Plan.arm(FaultSite::ComparatorThrow, 0.4);
    if (AlsoArmBody)
      Plan.arm(FaultSite::BodyThrow, 0.9);
    std::vector<bool> Out;
    for (int I = 0; I < 200; ++I) {
      Plan.shouldFire(FaultSite::BodyThrow); // interleaved probes
      Out.push_back(Plan.shouldFire(FaultSite::ComparatorThrow));
    }
    return Out;
  };
  EXPECT_EQ(DrawCmp(false), DrawCmp(true));
}

TEST(FaultPlan, FiringRateTracksProbability) {
  FaultPlan Plan(123);
  Plan.arm(FaultSite::SpuriousCancel, 0.25);
  const int N = 20000;
  int Fired = 0;
  for (int I = 0; I < N; ++I)
    Fired += Plan.shouldFire(FaultSite::SpuriousCancel);
  EXPECT_NEAR(static_cast<double>(Fired) / N, 0.25, 0.02);
  EXPECT_EQ(Plan.fired(FaultSite::SpuriousCancel),
            static_cast<uint64_t>(Fired));
}

TEST(FaultPlan, MaybeThrowCarriesSiteAndProbe) {
  FaultPlan Plan(5);
  Plan.arm(FaultSite::PredictorThrow, 1.0);
  try {
    Plan.maybeThrow(FaultSite::PredictorThrow);
    FAIL() << "expected SpecFaultError";
  } catch (const SpecFaultError &E) {
    EXPECT_EQ(E.Site, FaultSite::PredictorThrow);
    EXPECT_EQ(E.Probe, 1u);
    EXPECT_NE(std::string(E.what()).find("predictor-throw"),
              std::string::npos);
  }
}

TEST(FaultPlan, StrNamesSeedAndArmedSites) {
  FaultPlan Plan(77);
  Plan.arm(FaultSite::ForceMispredict, 0.5);
  Plan.shouldFire(FaultSite::ForceMispredict);
  std::string S = Plan.str();
  EXPECT_NE(S.find("77"), std::string::npos);
  EXPECT_NE(S.find("force-mispredict"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Comparator exception contract (satellite: a throwing user equality is a
// failed prediction, never a propagated error)
//===----------------------------------------------------------------------===//

TEST(Iterate, ThrowingUserComparatorIsFailedPredictionNotError) {
  const int64_t N = 12;
  struct ThrowingEq {
    bool operator()(int64_t, int64_t) const {
      throw std::runtime_error("user comparator failure");
    }
  };
  SpeculationStats Stats;
  int64_t Value = 0;
  ASSERT_NO_THROW({
    auto R = Speculation::iterate<int64_t>(
        0, N, [](int64_t I, int64_t A) { return A + I; }, sumPredict,
        SpecConfig().threads(2), ThrowingEq{});
    Value = R.Value;
    Stats = R.Stats;
  });
  EXPECT_EQ(Value, sumOracle(N));
  // Every prediction point after the first resolved without a usable
  // comparison, and nothing counted as a misprediction.
  EXPECT_EQ(Stats.Predictions, N - 1);
  EXPECT_EQ(Stats.FailedPredictions, N - 1);
  EXPECT_EQ(Stats.Mispredictions, 0);
  // The pessimistic path re-executes every iteration in order.
  EXPECT_EQ(Stats.Reexecutions, N);
}

TEST(Iterate, InjectedComparatorThrowNeverPropagates) {
  const int64_t N = 16;
  FaultPlan Plan(2024);
  Plan.arm(FaultSite::ComparatorThrow, 1.0);
  auto R = Speculation::iterate<int64_t>(
      0, N, [](int64_t I, int64_t A) { return A + I; }, sumPredict,
      SpecConfig().threads(2).faults(&Plan));
  EXPECT_EQ(R.Value, sumOracle(N));
  EXPECT_EQ(R.Stats.FailedPredictions, N - 1);
  EXPECT_EQ(R.Stats.Mispredictions, 0);
  EXPECT_GT(Plan.fired(FaultSite::ComparatorThrow), 0u);
}

TEST(Apply, ThrowingUserComparatorIsFailedPredictionNotError) {
  struct ThrowingEq {
    bool operator()(int, int) const { throw std::runtime_error("cmp"); }
  };
  std::atomic<int> Consumed{-1};
  SpecResult<void> R;
  ASSERT_NO_THROW({
    R = Speculation::apply<int>(
        /*Producer=*/[] { return 41; },
        /*Predictor=*/[] { return 41; },
        /*Consumer=*/[&Consumed](int V) { Consumed = V; },
        SpecConfig().threads(2), ThrowingEq{});
  });
  // The re-execution delivered the *produced* value.
  EXPECT_EQ(Consumed.load(), 41);
  EXPECT_EQ(R.Stats.FailedPredictions, 1);
  EXPECT_EQ(R.Stats.Mispredictions, 0);
  EXPECT_EQ(R.Stats.Reexecutions, 1);
}

//===----------------------------------------------------------------------===//
// Predictor / body fault injection
//===----------------------------------------------------------------------===//

TEST(Iterate, InjectedPredictorThrowIsFailedPrediction) {
  const int64_t N = 10;
  FaultPlan Plan(31);
  Plan.arm(FaultSite::PredictorThrow, 1.0);
  auto R = Speculation::iterate<int64_t>(
      0, N, [](int64_t I, int64_t A) { return A + I; }, sumPredict,
      SpecConfig().threads(2).faults(&Plan));
  EXPECT_EQ(R.Value, sumOracle(N));
  // Every speculative prediction failed, so only iteration 0 (whose
  // initial value is non-speculative) dispatched an attempt.
  EXPECT_EQ(R.Stats.Tasks, 1);
  EXPECT_EQ(R.Stats.FailedPredictions, N - 1);
  EXPECT_EQ(R.Stats.Reexecutions, N - 1);
}

TEST(Iterate, InjectedBodyThrowPropagatesWithStatsOut) {
  const int64_t N = 8;
  FaultPlan Plan(7);
  Plan.arm(FaultSite::BodyThrow, 1.0);
  stats::Snapshot Snap;
  EXPECT_THROW(
      Speculation::iterate<int64_t>(
          0, N, [](int64_t I, int64_t A) { return A + I; }, sumPredict,
          SpecConfig().threads(2).faults(&Plan).statsOut(&Snap)),
      SpecFaultError);
  // statsOut() published the partial statistics despite the throw.
  EXPECT_GE(Snap.Spec.Tasks, 1);
}

//===----------------------------------------------------------------------===//
// Spurious cancellation
//===----------------------------------------------------------------------===//

TEST(Iterate, SpuriousCancellationNeverCorruptsTheResult) {
  const int64_t N = 64;
  for (uint64_t Seed : {1u, 2u, 3u}) {
    FaultPlan Plan(Seed);
    Plan.arm(FaultSite::SpuriousCancel, 0.5);
    auto R = Speculation::iterate<int64_t>(
        0, N,
        [](int64_t I, int64_t A) {
          // Bail with a *garbage* value when cancellation is observed:
          // the validator must still never accept it.
          if (currentTaskCancelled())
            return int64_t(-999999);
          return A + I;
        },
        sumPredict, SpecConfig().threads(4).faults(&Plan));
    EXPECT_EQ(R.Value, sumOracle(N)) << "seed " << Seed;
  }
}

TEST(Apply, SpuriousCancellationReexecutesWithProducedValue) {
  FaultPlan Plan(11);
  Plan.arm(FaultSite::SpuriousCancel, 1.0);
  std::atomic<int> Sum{0};
  std::atomic<int> Runs{0};
  auto R = Speculation::apply<int>(
      /*Producer=*/[] { return 10; },
      /*Predictor=*/[] { return 10; },
      /*Consumer=*/
      [&](int V) {
        ++Runs;
        Sum += V;
      },
      SpecConfig().threads(2).faults(&Plan));
  // The speculative consumer was cancelled before it ran; the validated
  // path re-executed exactly once with the real value.
  EXPECT_EQ(Runs.load(), 1);
  EXPECT_EQ(Sum.load(), 10);
  EXPECT_EQ(R.Stats.Reexecutions, 1);
}

//===----------------------------------------------------------------------===//
// Cooperative deadlines
//===----------------------------------------------------------------------===//

TEST(Iterate, DeadlineThrowsSpecTimeoutErrorAndLeaksNoTask) {
  const int64_t N = 4;
  SpecExecutor Ex(2);
  Tracer Tr;
  stats::Snapshot Snap;
  std::atomic<int> BodiesStarted{0};
  auto SlowBody = [&BodiesStarted](int64_t I, int64_t A) {
    ++BodiesStarted;
    // ~100ms of work unless cancellation (here: the deadline) is
    // observed.
    for (int Step = 0; Step < 20; ++Step) {
      if (currentTaskCancelled())
        return int64_t(-1);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return A + I;
  };
  try {
    Speculation::iterate<int64_t>(
        0, N, SlowBody, sumPredict,
        SpecConfig()
            .executor(Ex)
            .deadline(std::chrono::milliseconds(25))
            .trace(&Tr)
            .statsOut(&Snap));
    FAIL() << "expected SpecTimeoutError";
  } catch (const SpecTimeoutError &E) {
    EXPECT_EQ(E.Budget, std::chrono::nanoseconds(
                            std::chrono::milliseconds(25)));
  }
  // The drain guarantee: by the time the exception propagated, every
  // submitted task has retired — the executor is already idle, so
  // waitIdle() returns immediately and destruction has nothing to join
  // but the workers.
  Ex.waitIdle();
  EXPECT_GT(BodiesStarted.load(), 0);
  EXPECT_GE(Snap.Spec.Tasks, 1); // statsOut survived the throw
  EXPECT_GE(countEvents(Tr.snapshot(), SpecEventKind::Timeout), 1);
}

TEST(Iterate, NoDeadlineByDefault) {
  auto R = Speculation::iterate<int64_t>(
      0, 16, [](int64_t I, int64_t A) { return A + I; }, sumPredict,
      SpecConfig().threads(2));
  EXPECT_EQ(R.Value, sumOracle(16));
}

TEST(Apply, DeadlineThrowsSpecTimeoutError) {
  SpecExecutor Ex(2);
  EXPECT_THROW(
      Speculation::apply<int>(
          /*Producer=*/[] { return 1; },
          /*Predictor=*/
          [] {
            // A predictor that blows straight through the budget (it has
            // no cancellation to poll — the run must time out at the
            // validator's wait instead).
            std::this_thread::sleep_for(std::chrono::milliseconds(80));
            return 1;
          },
          /*Consumer=*/[](int) {},
          SpecConfig().executor(Ex).deadline(std::chrono::milliseconds(10))),
      SpecTimeoutError);
  Ex.waitIdle();
}

//===----------------------------------------------------------------------===//
// Adaptive sequential fallback (degradation)
//===----------------------------------------------------------------------===//

TEST(Iterate, ForcedMispredictionStormDegradesWithCorrectResult) {
  const int64_t N = 32;
  FaultPlan Plan(555);
  Plan.arm(FaultSite::ForceMispredict, 1.0);
  Tracer Tr;
  auto R = Speculation::iterate<int64_t>(
      0, N, [](int64_t I, int64_t A) { return A + I; }, sumPredict,
      SpecConfig().threads(2).faults(&Plan).degrade(0.5, 4).trace(&Tr));
  EXPECT_EQ(R.Value, sumOracle(N));
  // Every boundary before the trip was a forced misprediction; once the
  // window (4) saturated past rate 0.5 the run degraded and executed the
  // rest in order, exactly once each.
  EXPECT_GT(R.Stats.Mispredictions, 0);
  EXPECT_GT(R.Stats.DegradedChunks, 0);
  EXPECT_GE(R.Stats.DegradedChunks, N - 8);
  auto Events = Tr.snapshot();
  EXPECT_EQ(countEvents(Events, SpecEventKind::Degrade),
            static_cast<int>(R.Stats.DegradedChunks));
  // Every slot but the accepted first one resolved as exactly one of
  // re-execution (pre-trip forced mispredictions) or degraded in-order
  // execution — a degraded chunk is never also re-executed.
  EXPECT_EQ(R.Stats.Reexecutions + R.Stats.DegradedChunks, N - 1);
}

TEST(Iterate, ForcedMispredictionsWithoutDegradeStayCorrect) {
  const int64_t N = 16;
  FaultPlan Plan(9);
  Plan.arm(FaultSite::ForceMispredict, 1.0);
  auto R = Speculation::iterate<int64_t>(
      0, N, [](int64_t I, int64_t A) { return A + I; }, sumPredict,
      SpecConfig().threads(2).faults(&Plan));
  EXPECT_EQ(R.Value, sumOracle(N));
  EXPECT_EQ(R.Stats.Mispredictions, N - 1);
  EXPECT_EQ(R.Stats.Reexecutions, N - 1);
  EXPECT_EQ(R.Stats.DegradedChunks, 0);
}

TEST(Iterate, DegradeIsOffByDefault) {
  // A maximally mispredicting run without degrade() never degrades.
  const int64_t N = 24;
  auto R = Speculation::iterate<int64_t>(
      0, N, [](int64_t I, int64_t A) { return A + I; },
      [](int64_t I) { return I == 0 ? int64_t(0) : int64_t(-1); },
      SpecConfig().threads(2));
  EXPECT_EQ(R.Value, sumOracle(N));
  EXPECT_EQ(R.Stats.DegradedChunks, 0);
  EXPECT_EQ(R.Stats.Mispredictions, N - 1);
}

TEST(IterateChunked, DegradeAfterAutotuneResizeReconcilesWithTrace) {
  // Autotune and degrade interact: the all-bad first wave makes the
  // autotuner halve the chunk, then the widened degrade window trips
  // *after* the resize — so the degraded tail runs on the dynamic grid,
  // not the configured one. The accounting contract under test:
  // DegradedChunks counts dynamic segments, 1:1 with Degrade trace
  // events, and FinalChunk reports the segmentation the run ended on
  // (the last Autotune event's size — resizes stop at the trip).
  const int64_t N = 600, Chunk = 16;
  Tracer Tr;
  auto R = Speculation::iterateChunked<int64_t>(
      0, N, Chunk, [](int64_t I, int64_t A) { return A + I; },
      [](int64_t I) { return I == 0 ? int64_t(0) : int64_t(-7); },
      SpecConfig()
          .threads(2)
          .autotune(/*TargetMicros=*/1000)
          .degrade(/*MaxBadRate=*/0.5, /*Window=*/24)
          .trace(&Tr));
  EXPECT_EQ(R.Value, sumOracle(N));
  auto Events = Tr.snapshot();
  // The window (24) outlasts one 8-segment wave, so at least one
  // autotune adjustment lands before the trip.
  ASSERT_GE(countEvents(Events, SpecEventKind::Autotune), 1);
  EXPECT_GT(R.Stats.DegradedChunks, 0);
  EXPECT_EQ(countEvents(Events, SpecEventKind::Degrade),
            static_cast<int>(R.Stats.DegradedChunks));
  // FinalChunk is the dynamic chunk size, i.e. the last resize's value.
  int64_t LastResize = Chunk;
  for (const SpecEvent &E : Events)
    if (E.Kind == SpecEventKind::Autotune)
      LastResize = E.Index;
  EXPECT_EQ(R.Stats.FinalChunk, LastResize);
  EXPECT_LT(R.Stats.FinalChunk, Chunk); // the all-bad wave halved it
}

TEST(Iterate, DegradeTripsOnRealMispredictionsToo) {
  // No fault plan at all: a predictor that is simply wrong everywhere
  // trips the monitor the same way.
  const int64_t N = 20;
  Tracer Tr;
  auto R = Speculation::iterate<int64_t>(
      0, N, [](int64_t I, int64_t A) { return A + I; },
      [](int64_t I) { return I == 0 ? int64_t(0) : int64_t(-7); },
      SpecConfig().threads(2).degrade(0.0, 2).trace(&Tr));
  EXPECT_EQ(R.Value, sumOracle(N));
  EXPECT_GT(R.Stats.DegradedChunks, 0);
  EXPECT_GE(countEvents(Tr.snapshot(), SpecEventKind::Degrade), 1);
}

//===----------------------------------------------------------------------===//
// Finalizer exception contract (satellite: later finalizers must not run,
// attempts drained, stats still published)
//===----------------------------------------------------------------------===//

TEST(Iterate, ThrowingFinalizerSkipsLaterFinalizersAndDrains) {
  const int64_t N = 8;
  SpecExecutor Ex(2);
  stats::Snapshot Snap;
  std::vector<int64_t> Finalized;
  EXPECT_THROW(
      (Speculation::iterateLocal<int64_t, int64_t>(
          0, N, /*Init=*/[] { return int64_t(0); },
          /*Body=*/
          [](int64_t I, int64_t &L, int64_t A) {
            L = I;
            return A + I;
          },
          sumPredict,
          /*Finalize=*/
          [&Finalized](int64_t I, int64_t &) {
            if (I == 2)
              throw std::runtime_error("finalizer failure at 2");
            Finalized.push_back(I);
          },
          SpecConfig().executor(Ex).statsOut(&Snap))),
      std::runtime_error);
  // Finalizers ran in order up to (not including) the throwing one, and
  // never after it.
  EXPECT_EQ(Finalized, (std::vector<int64_t>{0, 1}));
  // Every attempt was cancelled and drained before the throw propagated.
  Ex.waitIdle();
  // Statistics still reached the out-param.
  EXPECT_GE(Snap.Spec.Tasks, N);
}

TEST(Iterate, ThrowingFinalizerStillFillsSnapshotSink) {
  // Throw-safe stats publication on a transient executor (the deprecated
  // SpeculationStats* sink is gone; the Snapshot sink owns this
  // contract on every executor-resolution path).
  const int64_t N = 6;
  stats::Snapshot Snap;
  SpecConfig Cfg = SpecConfig().threads(2).statsOut(&Snap);
  EXPECT_THROW(
      (Speculation::iterateLocal<int64_t, int64_t>(
          0, N, [] { return int64_t(0); },
          [](int64_t I, int64_t &L, int64_t A) {
            L = I;
            return A + I;
          },
          sumPredict,
          [](int64_t I, int64_t &) {
            if (I == 1)
              throw std::runtime_error("finalizer failure");
          },
          Cfg)),
      std::runtime_error);
  // The out-param sees the stats even though the run threw.
  EXPECT_GE(Snap.Spec.Tasks, N);
}

//===----------------------------------------------------------------------===//
// Executor under fault plans (satellite: destruction drains delayed tasks)
//===----------------------------------------------------------------------===//

TEST(Executor, DestructionDrainsTasksDelayedByFaultPlan) {
  FaultPlan Plan(13);
  Plan.arm(FaultSite::DelayTaskStart, 1.0);
  Plan.arm(FaultSite::JitterWakeup, 1.0);
  Plan.delayRange(std::chrono::microseconds(200),
                  std::chrono::microseconds(2000));
  std::atomic<int> Count{0};
  {
    SpecExecutor Ex(2);
    Ex.injectFaults(&Plan);
    for (int I = 0; I < 40; ++I)
      Ex.submit([&Count] { ++Count; });
    // Destroy immediately: the drain contract must hold even while every
    // task start is artificially delayed and wakeups are jittered.
  }
  EXPECT_EQ(Count.load(), 40);
  EXPECT_GT(Plan.fired(FaultSite::DelayTaskStart), 0u);
}

TEST(Iterate, RunsCorrectlyUnderExecutorTimingFaults) {
  const int64_t N = 24;
  FaultPlan Plan(17);
  Plan.arm(FaultSite::DelayTaskStart, 0.5);
  Plan.arm(FaultSite::JitterWakeup, 0.5);
  Plan.delayRange(std::chrono::microseconds(50),
                  std::chrono::microseconds(500));
  // threads(2) creates a transient executor; faults() arms its timing
  // sites for exactly this run.
  auto R = Speculation::iterate<int64_t>(
      0, N, [](int64_t I, int64_t A) { return A + I; }, sumPredict,
      SpecConfig().threads(2).faults(&Plan).mode(ValidationMode::Par));
  EXPECT_EQ(R.Value, sumOracle(N));
  EXPECT_GT(Plan.totalFired(), 0u);
}

//===----------------------------------------------------------------------===//
// Combined pressure
//===----------------------------------------------------------------------===//

//===----------------------------------------------------------------------===//
// Crash containment (signal shield + runaway watchdog)
//===----------------------------------------------------------------------===//

TEST(Shield, InjectedCrashIsContainedAndReexecuted) {
  const int64_t N = 64, Chunk = 8;
  FaultPlan Plan(404);
  Plan.arm(FaultSite::CrashInBody, 1.0);
  Tracer Tr;
  auto R = Speculation::iterateChunked<int64_t>(
      0, N, Chunk, [](int64_t I, int64_t A) { return A + I; }, sumPredict,
      SpecConfig().threads(2).faults(&Plan).shield().trace(&Tr));
  // Every speculative attempt crashed; every chunk was re-executed
  // authoritatively and the result is still exact.
  EXPECT_EQ(R.Value, sumOracle(N));
  EXPECT_GT(R.Stats.ContainedCrashes, 0);
  EXPECT_EQ(R.Stats.Reexecutions, N / Chunk);
  EXPECT_EQ(countEvents(Tr.snapshot(), SpecEventKind::CrashContained),
            static_cast<int>(R.Stats.ContainedCrashes));
  EXPECT_NE(R.Stats.str().find("contained-crashes="), std::string::npos);
  EXPECT_GT(Plan.fired(FaultSite::CrashInBody), 0u);
}

#if !defined(SPECPAR_SANITIZED)
TEST(Shield, RealNullDereferenceIsContained) {
  // Not an injected fault: the body really dereferences a null pointer
  // whenever it runs on a mispredicted (negative) input. The shield must
  // turn the hardware fault into a discarded attempt. Sanitizer builds
  // skip this: UBSan/ASan intercept the bad load before it ever becomes
  // a SIGSEGV (the injected-crash tests still run there — they raise()
  // the signal directly).
  const int64_t N = 24;
  std::atomic<int64_t> Sink{0};
  auto R = Speculation::iterate<int64_t>(
      0, N,
      [&Sink](int64_t I, int64_t A) {
        const int64_t *P = A < 0 ? nullptr : &I;
        Sink += *P; // crashes on garbage input
        return A + I;
      },
      // Mispredict everywhere (except the non-speculative start) with a
      // value that sends the body through the null pointer.
      [](int64_t I) { return I == 0 ? int64_t(0) : int64_t(-1); },
      SpecConfig().threads(2).shield());
  EXPECT_EQ(R.Value, sumOracle(N));
  EXPECT_GT(R.Stats.ContainedCrashes, 0);
}
#endif // !SPECPAR_SANITIZED

TEST(Shield, OffByDefaultNeverProbesCrashSites) {
  const int64_t N = 16;
  FaultPlan Plan(7);
  Plan.arm(FaultSite::CrashInBody, 1.0);
  Plan.arm(FaultSite::RunawayBody, 1.0);
  auto R = Speculation::iterate<int64_t>(
      0, N, [](int64_t I, int64_t A) { return A + I; }, sumPredict,
      SpecConfig().threads(2).faults(&Plan));
  // Without shield()/attemptBudget() the crash sites are never even
  // probed: unshielded code must not raise signals at itself.
  EXPECT_EQ(R.Value, sumOracle(N));
  EXPECT_EQ(Plan.probes(FaultSite::CrashInBody), 0u);
  EXPECT_EQ(Plan.probes(FaultSite::RunawayBody), 0u);
  EXPECT_EQ(R.Stats.ContainedCrashes, 0);
}

TEST(Shield, ArmedButIdleShieldChangesNothing) {
  const int64_t N = 48;
  auto R = Speculation::iterate<int64_t>(
      0, N, [](int64_t I, int64_t A) { return A + I; }, sumPredict,
      SpecConfig().threads(2).shield());
  EXPECT_EQ(R.Value, sumOracle(N));
  EXPECT_EQ(R.Stats.ContainedCrashes, 0);
  EXPECT_EQ(R.Stats.RunawayCancels, 0);
  EXPECT_EQ(R.Stats.Mispredictions, 0);
}

TEST(Shield, RunawayBodyIsForciblyAbandoned) {
  // The injected runaway spins without ever polling cancellation; only
  // the watchdog's forced abandonment (SIGURG + longjmp) can reclaim
  // the worker. The 500ms cap is a safety net so a broken watchdog
  // still lets the test finish (and fail on the counters).
  const int64_t N = 8;
  FaultPlan Plan(21);
  Plan.arm(FaultSite::RunawayBody, 1.0);
  Plan.runawayCap(std::chrono::milliseconds(500));
  Tracer Tr;
  auto R = Speculation::iterate<int64_t>(
      0, N, [](int64_t I, int64_t A) { return A + I; }, sumPredict,
      SpecConfig()
          .threads(2)
          .faults(&Plan)
          .attemptBudget(std::chrono::milliseconds(10))
          .trace(&Tr));
  EXPECT_EQ(R.Value, sumOracle(N));
  EXPECT_GT(R.Stats.RunawayCancels, 0);
  // Forced abandonment is also a containment (the attempt was discarded
  // via the shield's longjmp).
  EXPECT_GT(R.Stats.ContainedCrashes, 0);
  EXPECT_GE(countEvents(Tr.snapshot(), SpecEventKind::RunawayCancel), 1);
}

TEST(Shield, PollingBodyOverBudgetBailsCooperatively) {
  // A body that *does* poll sees the attempt budget through the same
  // cooperative deadline as everything else and bails long before the
  // watchdog would escalate to SIGURG — no containment, just a
  // discarded attempt and an authoritative re-execution.
  const int64_t N = 4;
  std::atomic<int> Bailed{0};
  auto R = Speculation::iterate<int64_t>(
      0, N,
      [&Bailed](int64_t I, int64_t A) {
        for (int Step = 0; Step < 40; ++Step) {
          if (currentTaskCancelled()) {
            ++Bailed;
            return int64_t(-1); // garbage; must never be accepted
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        return A + I;
      },
      sumPredict,
      SpecConfig().threads(2).attemptBudget(std::chrono::milliseconds(10)));
  EXPECT_EQ(R.Value, sumOracle(N));
  EXPECT_GT(Bailed.load(), 0);
  EXPECT_GT(R.Stats.RunawayCancels, 0);
  EXPECT_EQ(R.Stats.ContainedCrashes, 0);
}

TEST(Shield, ApplyContainsConsumerCrash) {
  FaultPlan Plan(88);
  Plan.arm(FaultSite::CrashInBody, 1.0);
  std::atomic<int> Runs{0};
  std::atomic<int> Sum{0};
  auto R = Speculation::apply<int>(
      /*Producer=*/[] { return 5; },
      /*Predictor=*/[] { return 5; },
      /*Consumer=*/
      [&](int V) {
        ++Runs;
        Sum += V;
      },
      SpecConfig().threads(2).faults(&Plan).shield());
  // The injected crash fired before the speculative consumer's body, so
  // only the validated re-execution's side effects landed.
  EXPECT_EQ(Runs.load(), 1);
  EXPECT_EQ(Sum.load(), 5);
  EXPECT_EQ(R.Stats.ContainedCrashes, 1);
  EXPECT_EQ(R.Stats.Reexecutions, 1);
}

TEST(Shield, ContainedCrashesSurviveMixedChaos) {
  // Crash containment composed with every other fault class: the result
  // must stay exact whatever the interleaving.
  const int64_t N = 120, Chunk = 8;
  for (uint64_t Seed = 1; Seed <= 3; ++Seed) {
    FaultPlan Plan(Seed * 77);
    Plan.arm(FaultSite::CrashInBody, 0.2);
    Plan.arm(FaultSite::ForceMispredict, 0.3);
    Plan.arm(FaultSite::SpuriousCancel, 0.3);
    Plan.arm(FaultSite::ComparatorThrow, 0.1);
    auto R = Speculation::iterateChunked<int64_t>(
        0, N, Chunk,
        [](int64_t I, int64_t A) {
          if (currentTaskCancelled())
            return int64_t(-1);
          return A + I;
        },
        sumPredict,
        SpecConfig().threads(4).faults(&Plan).shield().degrade(0.9, 6));
    EXPECT_EQ(R.Value, sumOracle(N)) << "seed " << Seed * 77;
  }
}

TEST(Shield, ThrowingBodyDisarmsShieldOnUnwind) {
  installSignalShield();
  // With an armed budget, a body that throws unwinds straight through
  // the armed region. The shield must disarm and drop the deadline on
  // that path: a slot left Armed=1 keeps a jmp_buf into the destroyed
  // shieldedCall frame, and the watchdog would siglongjmp into it at
  // budget + grace.
  bool Threw = false;
  try {
    shieldedCall(/*BudgetNs=*/2 * 1000 * 1000, [] {
      throw std::runtime_error("body threw");
    });
  } catch (const std::runtime_error &E) {
    Threw = std::string(E.what()) == "body threw";
  }
  EXPECT_TRUE(Threw);
  detail::ShieldSlot *S = detail::peekShieldSlot();
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Armed.load(), 0u);
  EXPECT_EQ(S->DeadlineNs.load(), 0);
  // Outlive budget + escalation grace: a stale armed slot would receive
  // the watchdog's SIGURG about now and corrupt the stack.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // The shield still contains the next attempt on this thread.
  ShieldOutcome SO = shieldedCall(0, [] { raise(SIGFPE); });
  EXPECT_EQ(SO.Fault, ContainedFault::Fpe);
}

TEST(Shield, StaleInnerGenerationSigurgDoesNotAbandonOuter) {
  installSignalShield();
  uint64_t InnerGen = 0;
  ShieldOutcome Outer = shieldedCall(0, [&] {
    detail::ShieldSlot *S = detail::myShieldSlot();
    shieldedCall(0, [&] {
      InnerGen = S->ArmGen.load(std::memory_order_relaxed);
    });
    // Simulate the watchdog's forced abandonment of the (already
    // finished) nested attempt arriving late, after the outer frame
    // re-armed. Re-arming takes a fresh generation, so the stale
    // SIGURG must fail the AbandonGen == ArmGen check and be ignored
    // instead of abandoning the outer attempt.
    S->AbandonGen.store(InnerGen, std::memory_order_relaxed);
    raise(SIGURG);
  });
  EXPECT_EQ(Outer.Fault, ContainedFault::None);
}

TEST(Shield, UserBodyThrowUnderShieldAndBudgetStaysSafe) {
  // End-to-end through the engine: a user body that throws inside a
  // shielded, budgeted attempt must surface normally at the join, and
  // the unwound worker slot must not stay armed for the watchdog — the
  // process has to survive well past budget + grace and later shielded
  // runs must still work.
  EXPECT_THROW(
      Speculation::iterateChunked<int64_t>(
          0, 16, 8,
          [](int64_t, int64_t) -> int64_t {
            throw std::runtime_error("user body failure");
          },
          sumPredict,
          SpecConfig().threads(2).shield().attemptBudget(
              std::chrono::milliseconds(5))),
      std::runtime_error);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  auto R = Speculation::iterateChunked<int64_t>(
      0, 64, 8, [](int64_t I, int64_t A) { return A + I; }, sumPredict,
      SpecConfig().threads(2).shield());
  EXPECT_EQ(R.Value, sumOracle(64));
}

TEST(Iterate, ChunkedRunSurvivesMixedScheduleFaults) {
  // Schedule faults only (no injected throws): the result must be exact.
  const int64_t N = 200, Chunk = 10;
  for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
    FaultPlan Plan(Seed * 1000);
    Plan.arm(FaultSite::ForceMispredict, 0.3);
    Plan.arm(FaultSite::SpuriousCancel, 0.3);
    Plan.arm(FaultSite::DelayTaskStart, 0.2);
    Plan.arm(FaultSite::JitterWakeup, 0.2);
    Plan.delayRange(std::chrono::microseconds(20),
                    std::chrono::microseconds(200));
    auto R = Speculation::iterateChunked<int64_t>(
        0, N, Chunk,
        [](int64_t I, int64_t A) {
          if (currentTaskCancelled())
            return int64_t(-1);
          return A + I;
        },
        sumPredict, SpecConfig().threads(4).faults(&Plan).degrade(0.9, 6));
    EXPECT_EQ(R.Value, sumOracle(N)) << "seed " << Seed * 1000;
  }
}

} // namespace
