//===- tests/apps_test.cpp - End-to-end application tests ------------------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Integration tests: the three paper benchmarks run end-to-end through
/// the speculation runtime (generate dataset -> speculative run ->
/// compare against the sequential baseline), across task counts, overlap
/// sizes (including adversarially tiny ones) and validation modes.
///
//===----------------------------------------------------------------------===//

#include "apps/SpeculativeHuffman.h"
#include "apps/SpeculativeLexing.h"
#include "apps/SpeculativeMwis.h"
#include "workloads/Datasets.h"
#include "workloads/SourceGen.h"

#include <gtest/gtest.h>

using namespace specpar;
using namespace specpar::apps;
using namespace specpar::lexgen;
using namespace specpar::huffman;
using namespace specpar::workloads;

namespace {

struct AppCase {
  int NumTasks;
  int64_t Overlap;
  rt::ValidationMode Mode;
};

class AppSweep : public ::testing::TestWithParam<AppCase> {};

TEST_P(AppSweep, SpeculativeLexingMatchesSequential) {
  const AppCase &C = GetParam();
  for (Language L : AllLanguages) {
    Lexer LX = makeLexer(L);
    std::string Text = generateSource(L, 11, 20000);
    std::vector<Token> Seq = sequentialLex(LX, Text);
    rt::SpecConfig Cfg = rt::SpecConfig().mode(C.Mode).threads(3);
    LexRun Run = speculativeLex(LX, Text, C.NumTasks, C.Overlap, Cfg);
    EXPECT_EQ(Run.Tokens, Seq)
        << languageName(L) << " tasks=" << C.NumTasks
        << " overlap=" << C.Overlap;
    EXPECT_EQ(Run.Stats.Spec.Predictions, C.NumTasks - 1);
  }
}

TEST_P(AppSweep, SpeculativeHuffmanMatchesSequential) {
  const AppCase &C = GetParam();
  for (HuffmanFlavour F : AllHuffmanFlavours) {
    std::vector<uint8_t> Data = generateHuffmanData(F, 23, 40000);
    Encoded E = encode(Data);
    Decoder D(E.Code);
    BitReader In(E.Bytes, E.NumBits);
    rt::SpecConfig Cfg = rt::SpecConfig().mode(C.Mode).threads(3);
    HuffmanRun Run =
        speculativeDecode(D, In, C.NumTasks, C.Overlap * 8, Cfg);
    EXPECT_EQ(Run.Decoded, Data)
        << huffmanFlavourName(F) << " tasks=" << C.NumTasks
        << " overlap=" << C.Overlap;
  }
}

TEST_P(AppSweep, SpeculativeMwisMatchesSequential) {
  const AppCase &C = GetParam();
  for (int64_t MaxW : {int64_t(50), int64_t(5000)}) {
    std::vector<int64_t> W = generatePathGraph(31, 50000, MaxW);
    std::vector<int32_t> SeqMembers;
    int64_t SeqWeight = mwis::solveSequential(W, &SeqMembers);
    rt::SpecConfig Cfg = rt::SpecConfig().mode(C.Mode).threads(3);
    MwisRun Run = speculativeMwis(W, C.NumTasks, C.Overlap, Cfg);
    EXPECT_EQ(Run.Weight, SeqWeight) << "maxW=" << MaxW;
    EXPECT_EQ(Run.Members, SeqMembers) << "maxW=" << MaxW;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AppSweep,
    ::testing::Values(AppCase{1, 64, rt::ValidationMode::Seq},
                      AppCase{4, 256, rt::ValidationMode::Seq},
                      AppCase{4, 0, rt::ValidationMode::Seq},
                      AppCase{4, 256, rt::ValidationMode::Par},
                      AppCase{4, 0, rt::ValidationMode::Par},
                      AppCase{16, 64, rt::ValidationMode::Seq},
                      AppCase{16, 2, rt::ValidationMode::Par}));

TEST(AppsLexing, ZeroOverlapMispredictsButStaysCorrect) {
  Lexer LX = makeLexer(Language::C);
  std::string Text = generateSource(Language::C, 3, 30000);
  LexRun Run = speculativeLex(LX, Text, 8, /*Overlap=*/0);
  EXPECT_EQ(Run.Tokens, sequentialLex(LX, Text));
  EXPECT_GT(Run.Stats.Spec.Mispredictions, 0)
      << "zero overlap cannot predict mid-token states";
}

TEST(AppsLexing, LargeOverlapEliminatesMispredictions) {
  Lexer LX = makeLexer(Language::Java);
  std::string Text = generateSource(Language::Java, 3, 30000);
  LexRun Run = speculativeLex(LX, Text, 8, /*Overlap=*/2048);
  EXPECT_EQ(Run.Stats.Spec.Mispredictions, 0)
      << "the paper's max-speedup configuration";
}

TEST(AppsLexing, AccuracyIsMonotoneInOverlap) {
  Lexer LX = makeLexer(Language::Latex);
  std::string Text = generateSource(Language::Latex, 9, 60000);
  double A16 = lexPredictionAccuracy(LX, Text, 16);
  double A64 = lexPredictionAccuracy(LX, Text, 64);
  double A256 = lexPredictionAccuracy(LX, Text, 256);
  EXPECT_LE(A16, A64 + 1e-9);
  EXPECT_LE(A64, A256 + 1e-9);
  EXPECT_GE(A256, 90.0);
}

TEST(AppsLexing, HtmlAccuracyStaysLowEvenAtLargeOverlap) {
  // The paper: HTML is the exception that never reaches 100%.
  Lexer LX = makeLexer(Language::Html);
  std::string Text = generateSource(Language::Html, 9, 60000);
  double A256 = lexPredictionAccuracy(LX, Text, 256);
  EXPECT_LT(A256, 90.0) << "long text-run tokens defeat the predictor";
}

TEST(AppsHuffman, MeasurementProducesSaneInputsForTheSimulator) {
  std::vector<uint8_t> Data =
      generateHuffmanData(HuffmanFlavour::Text, 5, 60000);
  Encoded E = encode(Data);
  Decoder D(E.Code);
  BitReader In(E.Bytes, E.NumBits);
  SegmentedMeasurement M = measureHuffman(D, In, 8, 512 * 8);
  ASSERT_EQ(M.Tasks.size(), 8u);
  double Total = 0;
  for (const sim::TaskSpec &T : M.Tasks) {
    EXPECT_GT(T.Work, 0.0);
    Total += T.Work;
  }
  EXPECT_NEAR(Total, M.SequentialSeconds, 1e-12);
  // Large overlap: essentially all predictions correct.
  int Correct = 0;
  for (const sim::TaskSpec &T : M.Tasks)
    Correct += T.PredictionCorrect;
  EXPECT_GE(Correct, 7);
}

TEST(AppsMwis, SingleTaskIsTheSequentialAlgorithm) {
  std::vector<int64_t> W = generatePathGraph(77, 10000, 50);
  MwisRun Run = speculativeMwis(W, 1, 0);
  EXPECT_EQ(Run.Weight, mwis::solveSequential(W, nullptr));
  EXPECT_EQ(Run.ForwardStats.Mispredictions, 0);
}

TEST(AppsMwis, EmptyGraph) {
  MwisRun Run = speculativeMwis({}, 4, 8);
  EXPECT_EQ(Run.Weight, 0);
  EXPECT_TRUE(Run.Members.empty());
}

} // namespace
