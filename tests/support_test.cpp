//===- tests/support_test.cpp - Support library unit tests ----------------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Casting.h"
#include "support/CommandLine.h"
#include "support/Interval.h"
#include "support/Result.h"
#include "support/Rng.h"
#include "support/StringUtils.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

using namespace specpar;

namespace {

//===----------------------------------------------------------------------===//
// Casting
//===----------------------------------------------------------------------===//

struct Base {
  enum class Kind { A, B } K;
  explicit Base(Kind K) : K(K) {}
};
struct DerivedA : Base {
  DerivedA() : Base(Kind::A) {}
  static bool classof(const Base *B) { return B->K == Kind::A; }
};
struct DerivedB : Base {
  DerivedB() : Base(Kind::B) {}
  static bool classof(const Base *B) { return B->K == Kind::B; }
};

TEST(Casting, IsaCastDynCast) {
  DerivedA A;
  Base *B = &A;
  EXPECT_TRUE(isa<DerivedA>(B));
  EXPECT_FALSE(isa<DerivedB>(B));
  EXPECT_TRUE((isa<DerivedB, DerivedA>(B)));
  EXPECT_EQ(cast<DerivedA>(B), &A);
  EXPECT_EQ(dyn_cast<DerivedB>(B), nullptr);
  EXPECT_EQ(dyn_cast<DerivedA>(B), &A);
  Base *Null = nullptr;
  EXPECT_EQ(dyn_cast_if_present<DerivedA>(Null), nullptr);
}

//===----------------------------------------------------------------------===//
// Result
//===----------------------------------------------------------------------===//

Result<int> parsePositive(int V) {
  if (V <= 0)
    return ResultError("not positive");
  return V;
}

TEST(Result, SuccessAndError) {
  Result<int> Ok = parsePositive(5);
  ASSERT_TRUE(bool(Ok));
  EXPECT_EQ(*Ok, 5);
  Result<int> Bad = parsePositive(-1);
  ASSERT_FALSE(bool(Bad));
  EXPECT_EQ(Bad.error(), "not positive");
}

//===----------------------------------------------------------------------===//
// ExtInt / Interval
//===----------------------------------------------------------------------===//

TEST(ExtInt, Ordering) {
  EXPECT_TRUE(ExtInt::negInf() < ExtInt(0));
  EXPECT_TRUE(ExtInt(0) < ExtInt::posInf());
  EXPECT_TRUE(ExtInt::negInf() < ExtInt::posInf());
  EXPECT_FALSE(ExtInt::posInf() < ExtInt::posInf());
  EXPECT_TRUE(ExtInt(-3) < ExtInt(7));
}

TEST(ExtInt, SaturatingArithmetic) {
  EXPECT_EQ(ExtInt(INT64_MAX) + ExtInt(1), ExtInt::posInf());
  EXPECT_EQ(ExtInt(INT64_MIN) + ExtInt(-1), ExtInt::negInf());
  EXPECT_EQ(ExtInt::posInf() + ExtInt(5), ExtInt::posInf());
  EXPECT_EQ(-ExtInt::posInf(), ExtInt::negInf());
  EXPECT_EQ(ExtInt(3) * ExtInt::negInf(), ExtInt::negInf());
  EXPECT_EQ(ExtInt(-3) * ExtInt::negInf(), ExtInt::posInf());
  EXPECT_EQ(ExtInt(0) * ExtInt::posInf(), ExtInt(0));
}

TEST(Interval, BasicOps) {
  Interval A = Interval::of(1, 5);
  Interval B = Interval::of(3, 9);
  EXPECT_EQ(Interval::join(A, B), Interval::of(1, 9));
  EXPECT_EQ(Interval::meet(A, B), Interval::of(3, 5));
  EXPECT_TRUE(A.intersects(B));
  EXPECT_FALSE(A.intersects(Interval::of(6, 9)));
  EXPECT_TRUE(A.contains(3));
  EXPECT_FALSE(A.contains(0));
  EXPECT_TRUE(Interval::full().contains(A));
  EXPECT_TRUE(A.contains(Interval::empty()));
}

TEST(Interval, EmptyIsAbsorbing) {
  Interval E = Interval::empty();
  Interval A = Interval::of(1, 5);
  EXPECT_TRUE((E + A).isEmpty());
  EXPECT_TRUE((A * E).isEmpty());
  EXPECT_EQ(Interval::join(E, A), A);
  EXPECT_TRUE(Interval::meet(E, A).isEmpty());
}

TEST(Interval, Arithmetic) {
  Interval A = Interval::of(1, 3);
  Interval B = Interval::of(-2, 4);
  EXPECT_EQ(A + B, Interval::of(-1, 7));
  EXPECT_EQ(A - B, Interval::of(-3, 5));
  EXPECT_EQ(A * B, Interval::of(-6, 12));
  EXPECT_EQ(Interval::point(2) * Interval::point(-3), Interval::point(-6));
}

TEST(Interval, Widening) {
  Interval Old = Interval::of(0, 10);
  EXPECT_EQ(Interval::widen(Old, Interval::of(0, 11)),
            Interval::of(ExtInt(0), ExtInt::posInf()));
  EXPECT_EQ(Interval::widen(Old, Interval::of(-1, 10)),
            Interval::of(ExtInt::negInf(), ExtInt(10)));
  EXPECT_EQ(Interval::widen(Old, Interval::of(2, 9)), Old);
}

/// Property sweep: interval arithmetic is a sound abstraction of concrete
/// arithmetic on random samples.
class IntervalSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalSoundness, AddSubMulAreSound) {
  Rng R(GetParam());
  for (int Trial = 0; Trial < 200; ++Trial) {
    int64_t ALo = R.nextInRange(-50, 50);
    int64_t AHi = ALo + static_cast<int64_t>(R.nextBelow(20));
    int64_t BLo = R.nextInRange(-50, 50);
    int64_t BHi = BLo + static_cast<int64_t>(R.nextBelow(20));
    Interval A = Interval::of(ALo, AHi), B = Interval::of(BLo, BHi);
    int64_t X = R.nextInRange(ALo, AHi), Y = R.nextInRange(BLo, BHi);
    EXPECT_TRUE((A + B).contains(X + Y));
    EXPECT_TRUE((A - B).contains(X - Y));
    EXPECT_TRUE((A * B).contains(X * Y));
    EXPECT_TRUE(Interval::join(A, B).contains(X));
    EXPECT_TRUE(Interval::join(A, B).contains(Y));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSoundness,
                         ::testing::Values(1, 2, 3, 4, 5));

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(Rng, DeterministicAcrossInstances) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, RangesRespectBounds) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    EXPECT_LT(R.nextBelow(10), 10u);
    int64_t V = R.nextInRange(-5, 5);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 5);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Rng, SplitStreamsDiffer) {
  Rng A(9);
  Rng B = A.split();
  bool AnyDifferent = false;
  Rng A2(9);
  for (int I = 0; I < 10; ++I)
    AnyDifferent |= (A2.next() != B.next());
  EXPECT_TRUE(AnyDifferent);
}

//===----------------------------------------------------------------------===//
// Strings
//===----------------------------------------------------------------------===//

TEST(StringUtils, SplitJoinTrim) {
  std::vector<std::string> Parts = splitString("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(joinStrings(Parts, "-"), "a-b--c");
  EXPECT_EQ(trimString("  x y\t\n"), "x y");
  EXPECT_TRUE(startsWith("foobar", "foo"));
  EXPECT_FALSE(startsWith("fo", "foo"));
  EXPECT_EQ(formatString("%d-%s", 3, "x"), "3-x");
}

TEST(StringUtils, FileRoundTrip) {
  std::string Path = ::testing::TempDir() + "/specpar_support_test.txt";
  ASSERT_TRUE(writeStringToFile(Path, "hello\x00world"));
  std::string Back;
  ASSERT_TRUE(readFileToString(Path, Back));
  EXPECT_EQ(Back, "hello\x00world");
  EXPECT_FALSE(readFileToString("/nonexistent/none", Back));
}

//===----------------------------------------------------------------------===//
// ArgParser
//===----------------------------------------------------------------------===//

TEST(ArgParser, FlagsOptionsPositionals) {
  ArgParser Args("tool", "test tool");
  bool *Trace = Args.flag("trace", "show trace");
  int64_t *Seed = Args.intOption("seed", 7, "seed");
  std::string *Sched = Args.strOption("sched", "random", "scheduler");
  std::string *File = Args.positional("file", "input");
  std::string *Extra = Args.optionalPositional("extra", "none", "optional");
  const char *Argv[] = {"tool", "--trace", "--seed", "42",
                        "--sched=rr", "prog.spec"};
  ASSERT_TRUE(Args.parse(6, const_cast<char **>(Argv)));
  EXPECT_TRUE(*Trace);
  EXPECT_EQ(*Seed, 42);
  EXPECT_EQ(*Sched, "rr");
  EXPECT_EQ(*File, "prog.spec");
  EXPECT_EQ(*Extra, "none");
}

TEST(ArgParser, DefaultsSurviveEmptyArgv) {
  ArgParser Args("tool", "t");
  int64_t *Seed = Args.intOption("seed", 5, "s");
  const char *Argv[] = {"tool"};
  ASSERT_TRUE(Args.parse(1, const_cast<char **>(Argv)));
  EXPECT_EQ(*Seed, 5);
}

TEST(ArgParser, Failures) {
  {
    ArgParser Args("tool", "t");
    Args.intOption("seed", 0, "s");
    const char *Argv[] = {"tool", "--seed", "abc"};
    EXPECT_FALSE(Args.parse(3, const_cast<char **>(Argv)));
    EXPECT_FALSE(Args.helpRequested());
  }
  {
    ArgParser Args("tool", "t");
    const char *Argv[] = {"tool", "--nope"};
    EXPECT_FALSE(Args.parse(2, const_cast<char **>(Argv)));
  }
  {
    ArgParser Args("tool", "t");
    Args.positional("file", "f");
    const char *Argv[] = {"tool"};
    EXPECT_FALSE(Args.parse(1, const_cast<char **>(Argv)));
  }
  {
    ArgParser Args("tool", "t");
    const char *Argv[] = {"tool", "--help"};
    EXPECT_FALSE(Args.parse(2, const_cast<char **>(Argv)));
    EXPECT_TRUE(Args.helpRequested());
  }
}

TEST(ArgParser, HelpTextMentionsEverything) {
  ArgParser Args("tool", "does things");
  Args.flag("trace", "show trace");
  Args.intOption("seed", 1, "the seed");
  Args.positional("file", "the file");
  std::string H = Args.helpText();
  EXPECT_NE(H.find("usage: tool"), std::string::npos);
  EXPECT_NE(H.find("--trace"), std::string::npos);
  EXPECT_NE(H.find("--seed"), std::string::npos);
  EXPECT_NE(H.find("<file>"), std::string::npos);
  EXPECT_NE(H.find("default 1"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Timer / memory probes
//===----------------------------------------------------------------------===//

TEST(Timer, MonotoneElapsed) {
  Timer T;
  double E1 = T.elapsedSeconds();
  double E2 = T.elapsedSeconds();
  EXPECT_GE(E1, 0.0);
  EXPECT_GE(E2, E1);
  T.reset();
  EXPECT_GE(T.elapsedSeconds(), 0.0);
}

TEST(Timer, MemoryProbesReportSomething) {
  EXPECT_GT(peakMemoryKB(), 0u);
  EXPECT_GT(currentMemoryKB(), 0u);
}

} // namespace
