//===- tests/interp_test.cpp - Interpreter tests ---------------------------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/NonSpecEval.h"
#include "interp/SpecMachine.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace specpar;
using namespace specpar::interp;
using namespace specpar::lang;

namespace {

std::unique_ptr<Program> parse(std::string_view Src) {
  auto R = parseProgram(Src);
  EXPECT_TRUE(bool(R)) << R.error() << "\nsource: " << Src;
  return R ? R.take() : nullptr;
}

int64_t evalInt(std::string_view Src) {
  auto P = parse(Src);
  RunOutcome O = runNonSpeculative(*P);
  EXPECT_TRUE(O.ok()) << O.statusStr() << "\nsource: " << Src;
  EXPECT_TRUE(O.Result.isInt()) << "result: " << O.Result.str();
  return O.Result.isInt() ? O.Result.asInt() : INT64_MIN;
}

//===----------------------------------------------------------------------===//
// Non-speculative evaluator
//===----------------------------------------------------------------------===//

TEST(NonSpec, Arithmetic) {
  EXPECT_EQ(evalInt("main = 2 + 3 * 4"), 14);
  EXPECT_EQ(evalInt("main = (10 - 4) / 3"), 2);
  EXPECT_EQ(evalInt("main = 17 % 5"), 2);
  EXPECT_EQ(evalInt("main = -7 + 2"), -5);
  EXPECT_EQ(evalInt("main = (3 < 4) + (4 <= 4) + (5 > 6) + (1 == 1)"), 3);
}

TEST(NonSpec, IfIsZeroTested) {
  EXPECT_EQ(evalInt("main = if 0 then 1 else 2"), 2);
  EXPECT_EQ(evalInt("main = if 7 then 1 else 2"), 1);
  EXPECT_EQ(evalInt("main = if -1 then 1 else 2"), 1);
}

TEST(NonSpec, LambdaAndLet) {
  EXPECT_EQ(evalInt("main = (\\x. x + 1)(41)"), 42);
  EXPECT_EQ(evalInt("main = (\\x y. x * y)(6, 7)"), 42);
  EXPECT_EQ(evalInt("main = let f = \\x. x + x in f(10) + f(11)"), 42);
  // Lexical scoping: the closure captures its defining environment.
  EXPECT_EQ(evalInt("main = let x = 1 in let f = \\y. x + y in "
                    "let x = 100 in f(10)"),
            11);
}

TEST(NonSpec, CellsAndSequencing) {
  EXPECT_EQ(evalInt("main = let c = new(5) in c := !c + 1; c := !c * 2; !c"),
            12);
  EXPECT_EQ(evalInt("main = let c = new(1) in (c := 9); !c"), 9);
}

TEST(NonSpec, Arrays) {
  EXPECT_EQ(evalInt("main = let a = newarr(4, 7) in a[0] + a[3]"), 14);
  EXPECT_EQ(evalInt("main = let a = newarr(4, 0) in a[2] := 5; a[2]"), 5);
  EXPECT_EQ(evalInt("main = len(newarr(9, 0))"), 9);
  EXPECT_EQ(evalInt("main = let a = newarr(3, 0) in "
                    "fold(\\i x. (a[i] := i * i; x), (), 0, 2); "
                    "a[0] + a[1] + a[2]"),
            5);
}

TEST(NonSpec, FoldInclusiveBounds) {
  EXPECT_EQ(evalInt("main = fold(\\i a. a + i, 0, 1, 10)"), 55);
  EXPECT_EQ(evalInt("main = fold(\\i a. a + i, 42, 5, 4)"), 42)
      << "empty fold returns the initial value (FOLD-1)";
  EXPECT_EQ(evalInt("main = fold(\\i a. a * 10 + i, 0, 1, 4)"), 1234)
      << "fold iterates in ascending order";
}

TEST(NonSpec, TopLevelFunctions) {
  EXPECT_EQ(evalInt("fun sq(x) = x * x\nmain = sq(6) + sq(1)"), 37);
  EXPECT_EQ(evalInt("fun add(x, y) = x + y\n"
                    "main = fold(add, 0, 1, 4)"),
            10)
      << "named functions are first-class and curry";
}

TEST(NonSpec, SpecIgnoresHint) {
  // NONSPEC-APPLY: c(p), predictor never runs.
  EXPECT_EQ(evalInt("main = spec(40 + 2, 0, \\x. x * 2)"), 84);
  // A predictor that would crash is fine: it is not evaluated.
  EXPECT_EQ(evalInt("main = spec(5, 1 / 0, \\x. x + 1)"), 6);
}

TEST(NonSpec, SpecFoldIgnoresHint) {
  // NONSPEC-ITERATE: fold f (g l) l u; only g(l) is used.
  EXPECT_EQ(evalInt("main = specfold(\\i a. a + i, \\i. i * 100, 1, 10)"),
            155)
      << "initial value is g(1) = 100";
  EXPECT_EQ(evalInt("main = specfold(\\i a. a + i, \\i. 7, 5, 4)"), 7)
      << "empty specfold returns g(l)";
}

TEST(NonSpec, RuntimeErrors) {
  auto ExpectError = [](std::string_view Src, const char *Needle) {
    auto P = parse(Src);
    RunOutcome O = runNonSpeculative(*P);
    EXPECT_EQ(O.St, RunOutcome::Status::Error) << Src;
    EXPECT_NE(O.Error.Message.find(Needle), std::string::npos)
        << O.Error.Message;
  };
  ExpectError("main = 1 / 0", "division by zero");
  ExpectError("main = 1 % 0", "modulo by zero");
  ExpectError("main = !5", "non-cell");
  ExpectError("main = 3(4)", "non-function");
  ExpectError("main = newarr(3, 0)[5]", "out of bounds");
  ExpectError("main = newarr(0 - 2, 1)", "non-negative");
  ExpectError("main = if () then 1 else 2", "integer");
  ExpectError("main = len(7)", "non-array");
}

TEST(NonSpec, StepLimit) {
  auto P = parse("main = fold(\\i a. a + i, 0, 1, 1000000)");
  EvalOptions Opts;
  Opts.MaxSteps = 1000;
  RunOutcome O = runNonSpeculative(*P, Opts);
  EXPECT_EQ(O.St, RunOutcome::Status::StepLimit);
}

TEST(NonSpec, TraceRecordsInterestingTransitions) {
  auto P = parse("main = let c = new(1) in c := 2; !c");
  RunOutcome O = runNonSpeculative(*P);
  ASSERT_TRUE(O.ok());
  ASSERT_EQ(O.Trace.Events.size(), 3u);
  EXPECT_EQ(O.Trace.Events[0].K, tr::Event::Kind::Alloc);
  EXPECT_EQ(O.Trace.Events[1].K, tr::Event::Kind::Set);
  EXPECT_EQ(O.Trace.Events[2].K, tr::Event::Kind::Get);
  EXPECT_EQ(O.Trace.Events[2].Value.Int, 2);
}

//===----------------------------------------------------------------------===//
// Speculative machine: functional agreement
//===----------------------------------------------------------------------===//

struct MachineCase {
  const char *Name;
  const char *Source;
  int64_t Expected;
};

class SpecMachineAgreement : public ::testing::TestWithParam<MachineCase> {};

TEST_P(SpecMachineAgreement, AllSchedulersAndSeedsAgree) {
  const MachineCase &C = GetParam();
  auto P = parse(C.Source);
  ASSERT_NE(P, nullptr);
  RunOutcome NonSpec = runNonSpeculative(*P);
  ASSERT_TRUE(NonSpec.ok()) << NonSpec.statusStr();
  ASSERT_TRUE(NonSpec.Result.isInt());
  EXPECT_EQ(NonSpec.Result.asInt(), C.Expected);

  for (SchedulerKind K : {SchedulerKind::Random, SchedulerKind::RoundRobin,
                          SchedulerKind::NonSpecPriority}) {
    for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
      MachineOptions Opts;
      Opts.Sched = K;
      Opts.Seed = Seed;
      SpecRunOutcome O = runSpeculative(*P, Opts);
      ASSERT_TRUE(O.ok())
          << C.Name << " sched=" << int(K) << " seed=" << Seed << ": "
          << O.statusStr();
      ASSERT_TRUE(O.Result.isInt());
      EXPECT_EQ(O.Result.asInt(), C.Expected)
          << C.Name << " sched=" << int(K) << " seed=" << Seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Programs, SpecMachineAgreement,
    ::testing::Values(
        MachineCase{"pure_spec_hit", "main = spec(40 + 2, 42, \\x. x * 2)",
                    84},
        MachineCase{"pure_spec_miss", "main = spec(40 + 2, 41, \\x. x * 2)",
                    84},
        MachineCase{"unit_prediction_parallel_composition",
                    "main = spec((), (), \\u. 21 + 21)", 42},
        MachineCase{"specfold_perfect_predictor",
                    "main = specfold(\\i a. a + i, \\i. (i * (i - 1)) / 2, "
                    "1, 10)",
                    55},
        MachineCase{"specfold_bad_predictor",
                    "main = specfold(\\i a. a + i, \\i. if i == 1 then 0 "
                    "else 999, 1, 10)",
                    55},
        MachineCase{"specfold_empty",
                    "main = specfold(\\i a. a + i, \\i. 7, 5, 4)", 7},
        MachineCase{"specfold_single",
                    "main = specfold(\\i a. a * 2, \\i. 3, 9, 9)", 6},
        MachineCase{"slot_writes_safe",
                    "main = let arr = newarr(10, 0) in "
                    "specfold(\\i a. (arr[i] := a + i; a + i), "
                    "\\i. (i * (i - 1)) / 2, 0, 9); "
                    "fold(\\i s. s + arr[i], 0, 0, 9)",
                    165},
        MachineCase{"nested_spec",
                    "main = spec(spec(20, 20, \\x. x + 1), 21, \\y. y * 2)",
                    42},
        MachineCase{"spec_inside_specfold",
                    "main = specfold(\\i a. a + spec(i, i, \\x. x), "
                    "\\i. (i * (i - 1)) / 2, 1, 5)",
                    15},
        MachineCase{"producer_with_fold",
                    "main = spec(fold(\\i a. a + i, 0, 1, 100), 5050, "
                    "\\x. x / 50)",
                    101},
        MachineCase{"named_functions",
                    "fun body(i, a) = a + i * i\n"
                    "fun pred(i) = ((i - 1) * i * (2 * i - 1)) / 6\n"
                    "main = specfold(body, pred, 1, 5)",
                    55}));

//===----------------------------------------------------------------------===//
// Speculative machine: statistics and modes
//===----------------------------------------------------------------------===//

TEST(SpecMachine, CountsPredictionsAndMispredictions) {
  auto P = parse("main = specfold(\\i a. a + i, \\i. if i == 1 then 0 else "
                 "999, 1, 10)");
  MachineOptions Opts;
  Opts.Sched = SchedulerKind::RoundRobin;
  SpecRunOutcome O = runSpeculative(*P, Opts);
  ASSERT_TRUE(O.ok());
  // Boundaries validated: the chain checks iterations 2..10 plus the final
  // wait; spec semantics validates 9 predictions, all wrong.
  EXPECT_EQ(O.Predictions, 9u);
  EXPECT_EQ(O.Mispredictions, 9u);
  EXPECT_EQ(O.Cancellations, 9u);
  EXPECT_GT(O.ThreadsSpawned, 18u) << "3 threads per speculative iteration";
}

TEST(SpecMachine, PerfectPredictionNoMispredictions) {
  auto P =
      parse("main = specfold(\\i a. a + i, \\i. (i * (i - 1)) / 2, 1, 10)");
  SpecRunOutcome O = runSpeculative(*P);
  ASSERT_TRUE(O.ok());
  EXPECT_EQ(O.Predictions, 9u);
  EXPECT_EQ(O.Mispredictions, 0u);
  EXPECT_EQ(O.Cancellations, 0u);
}

TEST(SpecMachine, SpecApplyStats) {
  auto P = parse("main = spec(6 * 7, 41, \\x. x)");
  SpecRunOutcome O = runSpeculative(*P);
  ASSERT_TRUE(O.ok());
  EXPECT_EQ(O.Result.asInt(), 42);
  EXPECT_EQ(O.Predictions, 1u);
  EXPECT_EQ(O.Mispredictions, 1u);
  EXPECT_EQ(O.ThreadsSpawned, 3u);
}

TEST(SpecMachine, EagerProducerAbortStillCorrect) {
  // An expensive predictor: the producer usually finishes first under the
  // nonspec-priority scheduler, triggering the Section 3.3 abort.
  auto P = parse("main = spec(1 + 1, fold(\\i a. a + 1, 0, 1, 500) - 498, "
                 "\\x. x * 21)");
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    MachineOptions Opts;
    Opts.EagerProducerAbort = true;
    Opts.Sched = SchedulerKind::NonSpecPriority;
    Opts.Seed = Seed;
    SpecRunOutcome O = runSpeculative(*P, Opts);
    ASSERT_TRUE(O.ok()) << O.statusStr();
    EXPECT_EQ(O.Result.asInt(), 42);
  }
}

TEST(SpecMachine, StepLimitOnHugeSpeculation) {
  auto P = parse("main = specfold(\\i a. a + i, \\i. 0, 1, 1000000)");
  MachineOptions Opts;
  Opts.MaxSteps = 2000;
  SpecRunOutcome O = runSpeculative(*P, Opts);
  EXPECT_EQ(O.St, RunOutcome::Status::StepLimit);
}

TEST(SpecMachine, ErrorInProducerPropagates) {
  auto P = parse("main = spec(1 / 0, 1, \\x. x)");
  SpecRunOutcome O = runSpeculative(*P);
  EXPECT_EQ(O.St, RunOutcome::Status::Error);
  EXPECT_NE(O.Error.Message.find("division"), std::string::npos);
}

TEST(SpecMachine, ErrorInMispredictedConsumerIsInvisible) {
  // The speculative consumer divides by zero on the *predicted* value 0,
  // but the prediction is wrong (producer yields 7), so the failing
  // speculative thread is cancelled and the re-execution succeeds.
  auto P = parse("main = spec(7, 0, \\x. 42 / (x + 1))");
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    MachineOptions Opts;
    Opts.Seed = Seed;
    SpecRunOutcome O = runSpeculative(*P, Opts);
    ASSERT_TRUE(O.ok()) << "seed " << Seed << ": " << O.statusStr();
    EXPECT_EQ(O.Result.asInt(), 5);
  }
}

TEST(SpecMachine, SpeculativeTraceContainsWastedWork) {
  // A mispredicted iteration writes its slot twice (speculative + re-exec)
  // under schedulers that let the speculative body finish.
  auto P = parse("main = let a = newarr(2, 0) in "
                 "specfold(\\i x. (a[i] := x + 1; x + 1), "
                 "\\i. if i == 0 then 0 else 999, 0, 1)");
  MachineOptions Opts;
  Opts.Sched = SchedulerKind::RoundRobin;
  SpecRunOutcome O = runSpeculative(*P, Opts);
  ASSERT_TRUE(O.ok());
  size_t SetCount = 0;
  for (const tr::Event &E : O.Trace.Events)
    if (E.K == tr::Event::Kind::Set)
      ++SetCount;
  EXPECT_GE(SetCount, 3u) << "mispredicted side effects are not rolled back";
}

} // namespace
