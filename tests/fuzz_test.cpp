//===- tests/fuzz_test.cpp - Random-program soundness fuzzing -------------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Grammar-driven random Speculate programs exercise the soundness chain
/// end to end:
///
///   * whenever the rollback-freedom checker accepts a program, every
///     explored speculative schedule must be final-state equivalent to
///     the non-speculative run (Theorem 1 — the checker may never accept
///     a program that diverges);
///   * parse/print round-trips stay stable on generated programs;
///   * the corpus must contain both accepted and rejected programs (the
///     test is vacuous otherwise).
///
/// The generator draws loop bodies from statement templates spanning safe
/// idioms (slot writes, local cells, read-only inputs) and unsafe ones
/// (shared accumulators, neighbour writes, conditional slot writes,
/// read-modify-write slots); programs are terminating by construction
/// (no recursion, bounded folds) and error-free by construction (indices
/// stay in bounds, no division).
///
//===----------------------------------------------------------------------===//

#include "analysis/RollbackChecker.h"
#include "interp/NonSpecEval.h"
#include "interp/SpecMachine.h"
#include "lang/Parser.h"
#include "lang/Printer.h"
#include "support/Rng.h"
#include "support/StringUtils.h"
#include "trace/Equivalence.h"

#include <gtest/gtest.h>

using namespace specpar;

namespace {

/// Builds one random program. Shape:
///
///   main =
///     let inp = newarr(SIZE, seed) in        (read-only input)
///     let out = newarr(SIZE, 0) in           (per-iteration slots)
///     let aux = newarr(SIZE, 0) in
///     let c = new(seedC) in                  (a shared cell)
///     <prelude folds filling inp>
///     specfold(\i a. <body>, \i. <guess>, 0, SEGS - 1);
///     <observation: fold summing out/aux/!c>
std::string generateProgram(Rng &R) {
  const int Segs = 3 + static_cast<int>(R.nextBelow(5));   // iterations
  const int Size = 4 * Segs + 8;                           // array size

  // Body statements: a random subset of templates, always ending by
  // returning a new accumulator.
  std::vector<std::string> Stmts;
  int NumStmts = 1 + static_cast<int>(R.nextBelow(3));
  for (int S = 0; S < NumStmts; ++S) {
    switch (R.nextBelow(9)) {
    case 0: // safe: own slot write from acc
      Stmts.push_back("out[i] := a + inp[i]");
      break;
    case 1: // safe: own slot write, pure of acc
      Stmts.push_back("out[i] := inp[i] * 2");
      break;
    case 2: // safe: strided slot
      Stmts.push_back("aux[2 * i] := a");
      break;
    case 3: // safe: iteration-local cell
      Stmts.push_back("let t = new(a) in t := !t + inp[i]; aux[2 * i + 1] "
                      ":= !t");
      break;
    case 4: // unsafe: shared counter (violates a/d)
      Stmts.push_back("c := !c + 1");
      break;
    case 5: // unsafe: neighbour write (violates c)
      Stmts.push_back("out[i + 1] := a");
      break;
    case 6: // unsafe: conditional slot write (violates e)
      Stmts.push_back("if a > 2 then out[i] := a else ()");
      break;
    case 7: // unsafe: read-modify-write of own slot (violates d)
      Stmts.push_back("out[i] := out[i] + 1");
      break;
    default: // safe: read-only observation of the input
      Stmts.push_back("aux[2 * i] := inp[i] + inp[i + 1]");
      break;
    }
  }
  // Accumulator update: a few terminating integer recurrences.
  const char *AccUpdates[] = {
      "a + inp[i]",
      "a * 2 + i",
      "inp[i] - (if a > 0 then a else 0)",
      "a + 1",
  };
  std::string Body = joinStrings(Stmts, "; ") + "; " +
                     AccUpdates[R.nextBelow(4)];

  // Predictors: sometimes exact for simple recurrences, usually not; the
  // initial value g(0) is what the fold starts from either way.
  const char *Guesses[] = {"0", "i", "i * 3 - 1", "7"};
  std::string Guess = Guesses[R.nextBelow(4)];

  std::string P;
  P += "main =\n";
  P += formatString("  let inp = newarr(%d, 1) in\n", Size);
  P += formatString("  let out = newarr(%d, 0) in\n", Size);
  P += formatString("  let aux = newarr(%d, 0) in\n", 2 * Size);
  P += formatString("  let c = new(%d) in\n",
                    static_cast<int>(R.nextBelow(5)));
  P += formatString("  fold(\\p u. (inp[p] := (p * %d + %d) %% 17; u), (), "
                    "0, %d);\n",
                    static_cast<int>(3 + R.nextBelow(7)),
                    static_cast<int>(R.nextBelow(11)), Size - 1);
  P += formatString("  specfold(\\i a. (%s), \\i. %s, 0, %d);\n",
                    Body.c_str(), Guess.c_str(), Segs - 1);
  P += formatString("  fold(\\p s. s + out[p] + aux[p], !c, 0, %d)\n",
                    Size - 1);
  return P;
}

TEST(Fuzz, CheckerSoundnessOverRandomPrograms) {
  Rng R(20260707);
  int Accepted = 0, Rejected = 0, Divergent = 0;
  const int Corpus = 60;
  for (int Trial = 0; Trial < Corpus; ++Trial) {
    std::string Source = generateProgram(R);
    auto PR = lang::parseProgram(Source);
    ASSERT_TRUE(bool(PR)) << PR.error() << "\n" << Source;
    const lang::Program &P = **PR;

    // Print/parse round-trip stability on the generated corpus.
    std::string Printed = lang::printProgram(P);
    auto PR2 = lang::parseProgram(Printed);
    ASSERT_TRUE(bool(PR2)) << PR2.error() << "\nprinted:\n" << Printed;
    EXPECT_EQ(lang::printProgram(**PR2), Printed);

    interp::RunOutcome N = interp::runNonSpeculative(P);
    ASSERT_TRUE(N.ok()) << N.statusStr() << "\n" << Source;

    analysis::AnalysisReport Rep = analysis::checkRollbackFreedom(P);
    bool SawDivergence = false;
    for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
      interp::MachineOptions MO;
      MO.Seed = Seed;
      MO.Sched = Seed % 2 ? interp::SchedulerKind::Random
                          : interp::SchedulerKind::RoundRobin;
      interp::SpecRunOutcome S = interp::runSpeculative(P, MO);
      ASSERT_TRUE(S.ok()) << S.statusStr() << "\n" << Source;
      bool Equivalent = tr::checkFinalStateEquivalent(N.Final, S.Final).ok();
      SawDivergence = SawDivergence || !Equivalent;
      if (Rep.programSafe()) {
        // THE soundness property: an accepted program never diverges.
        ASSERT_TRUE(Equivalent)
            << "checker accepted a divergent program (seed " << Seed
            << "):\n"
            << Source << "\n"
            << Rep.str();
      }
    }
    if (Rep.programSafe())
      ++Accepted;
    else
      ++Rejected;
    if (SawDivergence)
      ++Divergent;
  }
  // The corpus must be informative.
  EXPECT_GE(Accepted, 5) << "generator produced too few safe programs";
  EXPECT_GE(Rejected, 5) << "generator produced too few unsafe programs";
  EXPECT_GE(Divergent, 1)
      << "no unsafe program actually diverged — weak schedules?";
  ::testing::Test::RecordProperty("accepted", Accepted);
  ::testing::Test::RecordProperty("rejected", Rejected);
  ::testing::Test::RecordProperty("divergent", Divergent);
}

/// The interpreters themselves agree on *deterministic* random programs
/// that contain no speculation (differential testing of the two
/// evaluators' shared semantics).
TEST(Fuzz, EvaluatorsAgreeOnSpeculationFreePrograms) {
  Rng R(99);
  for (int Trial = 0; Trial < 40; ++Trial) {
    int N = 3 + static_cast<int>(R.nextBelow(12));
    std::string Source = formatString(
        "main =\n"
        "  let a = newarr(%d, %d) in\n"
        "  let c = new(%d) in\n"
        "  fold(\\p u. (a[p] := (p * %d + !c) %% 23; c := !c + a[p]; u), "
        "(), 0, %d);\n"
        "  fold(\\p s. s * 3 + a[p], !c, 0, %d)",
        N, static_cast<int>(R.nextBelow(7)),
        static_cast<int>(R.nextBelow(9)),
        static_cast<int>(1 + R.nextBelow(6)), N - 1, N - 1);
    auto PR = lang::parseProgram(Source);
    ASSERT_TRUE(bool(PR)) << PR.error();
    interp::RunOutcome A = interp::runNonSpeculative(**PR);
    interp::SpecRunOutcome B = interp::runSpeculative(**PR);
    ASSERT_TRUE(A.ok() && B.ok());
    ASSERT_TRUE(A.Result.isInt() && B.Result.isInt());
    EXPECT_EQ(A.Result.asInt(), B.Result.asInt()) << Source;
    // With no speculation constructs the speculative machine spawns no
    // threads and records an identical trace.
    EXPECT_EQ(B.ThreadsSpawned, 0u);
    EXPECT_EQ(A.Trace.Events.size(), B.Trace.Events.size());
    EXPECT_TRUE(tr::checkDependenceEquivalent(A.Trace, B.Trace).ok());
  }
}

} // namespace
