//===- tests/interp_semantics_test.cpp - Fine-grained semantics tests ------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Corner cases of the formal semantics that the agreement suite does not
/// pin down: evaluation-context order, the per-iteration predictor
/// evaluation of the speculative semantics (vs g(l)-only in the
/// non-speculative one), unit predictions encoding parallel composition
/// and do-all loops, and thread bookkeeping of the auxfold chain.
///
//===----------------------------------------------------------------------===//

#include "interp/NonSpecEval.h"
#include "interp/SpecMachine.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace specpar;
using namespace specpar::interp;

namespace {

std::unique_ptr<lang::Program> parse(std::string_view Src) {
  auto R = lang::parseProgram(Src);
  EXPECT_TRUE(bool(R)) << R.error() << "\nsource: " << Src;
  return R.take();
}

//===----------------------------------------------------------------------===//
// Evaluation-context order
//===----------------------------------------------------------------------===//

TEST(SemanticsOrder, SpecEvaluatesConsumerExpressionFirst) {
  // Context `spec ep eg E`: the consumer expression evaluates before the
  // producer starts, under BOTH semantics. The consumer expression writes
  // c := 1; the producer then writes c := 2 and reads it.
  auto P = parse("main = let c = new(0) in "
                 "spec((c := 2; !c), 2, (c := 1; \\x. x))");
  RunOutcome N = runNonSpeculative(*P);
  ASSERT_TRUE(N.ok());
  EXPECT_EQ(N.Result.asInt(), 2) << "consumer-expression effect precedes "
                                    "the producer";
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    MachineOptions MO;
    MO.Seed = Seed;
    SpecRunOutcome S = runSpeculative(*P, MO);
    ASSERT_TRUE(S.ok());
    EXPECT_EQ(S.Result.asInt(), 2) << "seed " << Seed;
  }
}

TEST(SemanticsOrder, SpecFoldEvaluatesOperandsLeftToRight) {
  // op4 context: f, g, lo, hi evaluate left to right; their side effects
  // happen once, in that order, under both semantics.
  auto P = parse("main = let c = new(0) in "
                 "specfold((c := !c * 10 + 1; \\i a. a), "
                 "(c := !c * 10 + 2; \\i. 0), "
                 "(c := !c * 10 + 3; 1), (c := !c * 10 + 4; 0)); !c");
  RunOutcome N = runNonSpeculative(*P);
  ASSERT_TRUE(N.ok());
  EXPECT_EQ(N.Result.asInt(), 1234);
  SpecRunOutcome S = runSpeculative(*P);
  ASSERT_TRUE(S.ok());
  EXPECT_EQ(S.Result.asInt(), 1234);
}

//===----------------------------------------------------------------------===//
// Predictor evaluation frequency: the observable difference between the
// two semantics (and why predictors must be effect-free for safety)
//===----------------------------------------------------------------------===//

TEST(SemanticsDifference, NonSpecEvaluatesPredictorOnceSpecPerIteration) {
  // g marks its slot. NONSPEC-ITERATE applies g once (at l); the
  // speculative rules spawn a tg thread per iteration, and every check
  // waits for its predictor, so all marks land before main finishes.
  // This program is deliberately unsafe — it pins the *semantics*.
  const char *Src =
      "main = let m = newarr(6, 0) in "
      "specfold(\\i a. a, \\i. (m[i] := 1; 0), 1, 5); "
      "fold(\\i s. s + m[i], 0, 0, 5)";
  auto P = parse(Src);
  RunOutcome N = runNonSpeculative(*P);
  ASSERT_TRUE(N.ok());
  EXPECT_EQ(N.Result.asInt(), 1) << "non-speculative semantics: g(l) only";

  for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
    MachineOptions MO;
    MO.Seed = Seed;
    SpecRunOutcome S = runSpeculative(*P, MO);
    ASSERT_TRUE(S.ok());
    EXPECT_EQ(S.Result.asInt(), 5)
        << "speculative semantics: one predictor thread per iteration";
  }
}

//===----------------------------------------------------------------------===//
// The paper's encodings: parallel composition and do-all loops via unit
// predictions
//===----------------------------------------------------------------------===//

TEST(Encodings, ParallelCompositionViaUnitPrediction) {
  // e1 || e2 == spec(e1, (), \u. e2): the unit prediction always
  // validates, so e2's speculative execution is always kept.
  auto P = parse("main = let a = new(0) in let b = new(0) in "
                 "spec((a := 21; ()), (), \\u. b := 21); !a + !b");
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    MachineOptions MO;
    MO.Seed = Seed;
    SpecRunOutcome S = runSpeculative(*P, MO);
    ASSERT_TRUE(S.ok()) << S.statusStr();
    EXPECT_EQ(S.Result.asInt(), 42);
    EXPECT_EQ(S.Mispredictions, 0u) << "unit == unit always";
  }
}

TEST(Encodings, DoAllLoopViaUnitCarriedValue) {
  // A loop with no carried dependence: carry unit, predict unit — every
  // iteration runs in parallel and always validates.
  auto P = parse("main = let out = newarr(8, 0) in "
                 "specfold(\\i u. (out[i] := i * i; ()), \\i. (), 0, 7); "
                 "fold(\\i s. s + out[i], 0, 0, 7)");
  RunOutcome N = runNonSpeculative(*P);
  ASSERT_TRUE(N.ok());
  EXPECT_EQ(N.Result.asInt(), 140);
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    MachineOptions MO;
    MO.Seed = Seed;
    SpecRunOutcome S = runSpeculative(*P, MO);
    ASSERT_TRUE(S.ok());
    EXPECT_EQ(S.Result.asInt(), 140);
    EXPECT_EQ(S.Mispredictions, 0u);
  }
}

TEST(Encodings, UnitVersusIntPredictionMismatches) {
  // A unit guess against an integer producer is simply a misprediction
  // (predictions compare under integer/unit equality).
  auto P = parse("main = spec(7, (), \\x. x)");
  SpecRunOutcome S = runSpeculative(*P);
  ASSERT_TRUE(S.ok());
  EXPECT_EQ(S.Result.asInt(), 7);
  EXPECT_EQ(S.Mispredictions, 1u);
}

//===----------------------------------------------------------------------===//
// Thread bookkeeping of the auxfold chain
//===----------------------------------------------------------------------===//

TEST(ThreadAccounting, SpecFoldSpawnsThreeThreadsPerSpeculativeIteration) {
  // Rules: SPEC-ITERATE-1 spawns tg+tb for the first iteration;
  // SPEC-ITERATE-2 spawns tg+tb+tc per remaining iteration.
  auto P = parse("main = specfold(\\i a. a + i, \\i. 0, 1, 6)");
  SpecRunOutcome S = runSpeculative(*P);
  ASSERT_TRUE(S.ok());
  EXPECT_EQ(S.ThreadsSpawned, 2u + 3u * 5u);
  EXPECT_EQ(S.Predictions, 5u);
}

TEST(ThreadAccounting, SpecSpawnsExactlyThree) {
  auto P = parse("main = spec(1, 1, \\x. x)");
  SpecRunOutcome S = runSpeculative(*P);
  ASSERT_TRUE(S.ok());
  EXPECT_EQ(S.ThreadsSpawned, 3u);
}

//===----------------------------------------------------------------------===//
// Cancellation and errors
//===----------------------------------------------------------------------===//

TEST(Cancellation, MispredictedIterationsAreCancelled) {
  auto P = parse("main = specfold(\\i a. a + 1, \\i. if i == 1 then 0 "
                 "else 100 + i, 1, 5)");
  MachineOptions MO;
  MO.Sched = SchedulerKind::RoundRobin;
  SpecRunOutcome S = runSpeculative(*P, MO);
  ASSERT_TRUE(S.ok());
  EXPECT_EQ(S.Result.asInt(), 5) << "five inclusive iterations from g(1)=0";
  EXPECT_EQ(S.Mispredictions, 4u);
  EXPECT_EQ(S.Cancellations, 4u);
}

TEST(Cancellation, ValidPathErrorStillSurfaces) {
  // The accumulator walks 0,1,2,3; iteration 4 sees a == 3 and divides by
  // zero with the CORRECT input, so the error must surface under every
  // schedule — whether the predictor was exact (the speculative run
  // itself fails) or useless (the re-execution fails).
  for (const char *Guess : {"i - 1", "if i == 1 then 0 else 0 - 9"}) {
    std::string Src = std::string("main = specfold(\\i a. if a == 3 then "
                                  "1 / 0 else a + 1, \\i. ") +
                      Guess + ", 1, 6)";
    auto P = parse(Src);
    RunOutcome N = runNonSpeculative(*P);
    EXPECT_EQ(N.St, RunOutcome::Status::Error) << Src;
    for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
      MachineOptions MO;
      MO.Seed = Seed;
      SpecRunOutcome S = runSpeculative(*P, MO);
      EXPECT_EQ(S.St, RunOutcome::Status::Error)
          << "seed " << Seed << " guess " << Guess;
    }
  }
}

TEST(Schedulers, NonSpecPriorityStillExploresSpeculation) {
  // Priority scheduling must not starve speculative threads forever
  // (producers eventually block on waits, releasing them).
  auto P = parse("main = specfold(\\i a. a + i, \\i. (i * (i - 1)) / 2, "
                 "1, 12)");
  MachineOptions MO;
  MO.Sched = SchedulerKind::NonSpecPriority;
  SpecRunOutcome S = runSpeculative(*P, MO);
  ASSERT_TRUE(S.ok()) << S.statusStr();
  EXPECT_EQ(S.Result.asInt(), 78);
}

TEST(Schedulers, RoundRobinIsDeterministic) {
  auto P = parse("main = let out = newarr(6, 0) in "
                 "specfold(\\i a. (out[i] := a; a + i), \\i. 0, 0, 5)");
  MachineOptions MO;
  MO.Sched = SchedulerKind::RoundRobin;
  SpecRunOutcome A = runSpeculative(*P, MO);
  SpecRunOutcome B = runSpeculative(*P, MO);
  ASSERT_TRUE(A.ok() && B.ok());
  EXPECT_EQ(A.Steps, B.Steps);
  EXPECT_EQ(A.Trace.Events.size(), B.Trace.Events.size());
}

} // namespace
