//===- tests/runtime_test.cpp - Speculation runtime tests -----------------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Speculation.h"
#include "runtime/Telemetry.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <thread>

using namespace specpar;
using namespace specpar::rt;

namespace {

//===----------------------------------------------------------------------===//
// SpecExecutor
//===----------------------------------------------------------------------===//

TEST(Executor, RunsEveryTask) {
  SpecExecutor Ex(4);
  std::atomic<int> Count{0};
  for (int I = 0; I < 100; ++I)
    Ex.submit([&Count] { ++Count; });
  Ex.waitIdle();
  EXPECT_EQ(Count.load(), 100);
}

TEST(Executor, DestructorDrainsQueue) {
  std::atomic<int> Count{0};
  {
    SpecExecutor Ex(2);
    for (int I = 0; I < 50; ++I)
      Ex.submit([&Count] { ++Count; });
  }
  EXPECT_EQ(Count.load(), 50);
}

TEST(Executor, ZeroThreadsMeansHardwareConcurrency) {
  unsigned HW = std::thread::hardware_concurrency();
  EXPECT_EQ(SpecExecutor::defaultThreads(), HW == 0 ? 1u : HW);
  SpecExecutor Ex(0);
  EXPECT_EQ(Ex.numThreads(), SpecExecutor::defaultThreads());
  EXPECT_GE(Ex.numThreads(), 1u);
}

TEST(Executor, DefaultShardIsSharedAndHardwareWide) {
  const std::shared_ptr<SpecExecutor> &A = SpecExecutor::defaultShard();
  const std::shared_ptr<SpecExecutor> &B = SpecExecutor::defaultShard();
  ASSERT_TRUE(A);
  EXPECT_EQ(A.get(), B.get());
  EXPECT_EQ(A->numThreads(), SpecExecutor::defaultThreads());
  // Default-configured runs resolve to exactly this shard.
  EXPECT_EQ(SpecConfig().resolvedExecutor().get(), A.get());
}

TEST(Executor, CreateReturnsOwningHandle) {
  std::shared_ptr<SpecExecutor> Ex = SpecExecutor::create(2);
  ASSERT_TRUE(Ex);
  EXPECT_EQ(Ex->numThreads(), 2u);
  EXPECT_NE(Ex.get(), SpecExecutor::defaultShard().get());
  // The config shares ownership: the executor survives the caller
  // dropping its handle as long as a config (or queued job holding one)
  // still names it.
  SpecConfig Cfg = SpecConfig().executor(Ex);
  std::weak_ptr<SpecExecutor> Watch = Ex;
  Ex.reset();
  EXPECT_FALSE(Watch.expired());
  EXPECT_EQ(Cfg.resolvedExecutor().get(), Watch.lock().get());
  Cfg = SpecConfig();
  EXPECT_TRUE(Watch.expired());
}

TEST(Executor, TransientConfigResolvesToNoPersistentExecutor) {
  EXPECT_EQ(SpecConfig().threads(3).resolvedExecutor(), nullptr);
}

TEST(Executor, TasksSubmittedFromWorkersRun) {
  SpecExecutor Ex(2);
  std::atomic<int> Count{0};
  for (int I = 0; I < 8; ++I)
    Ex.submit([&] {
      ++Count;
      for (int J = 0; J < 4; ++J)
        Ex.submit([&Count] { ++Count; });
    });
  Ex.waitIdle();
  EXPECT_EQ(Count.load(), 8 * 5);
}

TEST(Executor, WorkerHelpingDrainsOwnSubtasks) {
  // The nested-speculation mechanism in miniature: with a single worker,
  // a task that blocks until its subtask completes can only make progress
  // by helping — tryRunOneTask() must execute the subtask inline.
  SpecExecutor Ex(1);
  std::atomic<bool> Done{false};
  Ex.submit([&] {
    Ex.submit([&Done] { Done = true; });
    while (!Done.load())
      Ex.tryRunOneTask();
  });
  Ex.waitIdle();
  EXPECT_TRUE(Done.load());
}

TEST(Executor, ExternalThreadCanHelp) {
  SpecExecutor Ex(1);
  std::atomic<bool> InWorker{false}, Release{false}, Helped{false};
  // Occupy the single worker, then verify an external thread can steal
  // and run the next queued task inline.
  Ex.submit([&] {
    InWorker = true;
    while (!Release.load())
      std::this_thread::yield();
  });
  while (!InWorker.load())
    std::this_thread::yield();
  Ex.submit([&Helped] { Helped = true; });
  EXPECT_TRUE(Ex.tryRunOneTask());
  EXPECT_TRUE(Helped.load());
  EXPECT_FALSE(Ex.onWorkerThread());
  Release = true;
  Ex.waitIdle();
}

//===----------------------------------------------------------------------===//
// Executor isolation: shards must not bleed statistics or fault plans
// into each other — the invariant the multi-tenant serving layer's
// per-shard accounting rests on.
//===----------------------------------------------------------------------===//

TEST(ExecutorIsolation, ConcurrentRunsDoNotBleedStats) {
  std::shared_ptr<SpecExecutor> A = SpecExecutor::create(2);
  std::shared_ptr<SpecExecutor> B = SpecExecutor::create(2);
  const ExecutorStats ABefore = A->stats();
  const ExecutorStats BBefore = B->stats();

  // Shard A runs with perfect predictions, shard B with every prediction
  // past the first forced wrong — concurrently, from two driver threads.
  stats::Snapshot SnapA, SnapB;
  std::thread DriveA([&] {
    Speculation::iterate<int64_t>(
        0, 64, [](int64_t, int64_t Acc) { return Acc + 1; },
        [](int64_t I) { return I; },
        SpecConfig().executor(A).statsOut(&SnapA));
  });
  std::thread DriveB([&] {
    Speculation::iterate<int64_t>(
        0, 64, [](int64_t, int64_t Acc) { return Acc + 1; },
        [](int64_t I) { return I == 0 ? int64_t(0) : int64_t(-1); },
        SpecConfig().executor(B).statsOut(&SnapB));
  });
  DriveA.join();
  DriveB.join();

  // Speculation counters stay per-run: A saw no mispredictions, B
  // mispredicted every boundary.
  EXPECT_EQ(SnapA.Spec.Mispredictions, 0);
  EXPECT_EQ(SnapB.Spec.Mispredictions, 63);

  // Executor activity stays per-shard: each shard's submit delta is its
  // own run's task count — nothing leaked across.
  const ExecutorStats ADelta = A->stats() - ABefore;
  const ExecutorStats BDelta = B->stats() - BBefore;
  EXPECT_EQ(ADelta.Submits, static_cast<uint64_t>(SnapA.Spec.Tasks));
  EXPECT_EQ(BDelta.Submits, static_cast<uint64_t>(SnapB.Spec.Tasks));
  EXPECT_EQ(ADelta.Submits, static_cast<uint64_t>(SnapA.Exec.Submits));
  EXPECT_EQ(BDelta.Submits, static_cast<uint64_t>(SnapB.Exec.Submits));
}

TEST(ExecutorIsolation, FaultPlansStayOnTheirShard) {
  std::shared_ptr<SpecExecutor> A = SpecExecutor::create(2);
  std::shared_ptr<SpecExecutor> B = SpecExecutor::create(2);
  FaultPlan Plan(/*Seed=*/7);
  Plan.arm(FaultSite::ForceMispredict, 1.0);
  A->injectFaults(&Plan);
  EXPECT_EQ(A->injectedFaults(), &Plan);
  // Arming shard A must not arm shard B…
  EXPECT_EQ(B->injectedFaults(), nullptr);
  // …and a run on B with a perfect predictor stays fault-free.
  stats::Snapshot Snap;
  auto R = Speculation::iterate<int64_t>(
      0, 32, [](int64_t, int64_t Acc) { return Acc + 1; },
      [](int64_t I) { return I; }, SpecConfig().executor(B).statsOut(&Snap));
  EXPECT_EQ(R.Value, 32);
  EXPECT_EQ(Snap.Spec.Mispredictions, 0);
  EXPECT_EQ(Snap.Spec.FailedPredictions, 0);
  A->injectFaults(nullptr);
}

TEST(ExecutorIsolation, SnapshotSinkAttributesTransientExecutorActivity) {
  // threads(N > 0) without executor(): the run creates a transient
  // executor; the snapshot's Exec half still reports its activity.
  stats::Snapshot Snap;
  auto R = Speculation::iterate<int64_t>(
      0, 16, [](int64_t, int64_t Acc) { return Acc + 1; },
      [](int64_t I) { return I; }, SpecConfig().threads(2).statsOut(&Snap));
  EXPECT_EQ(R.Value, 16);
  EXPECT_EQ(Snap.Spec.Tasks, 16);
  EXPECT_EQ(Snap.Exec.Submits, static_cast<uint64_t>(Snap.Spec.Tasks));
}

//===----------------------------------------------------------------------===//
// Speculation::apply
//===----------------------------------------------------------------------===//

TEST(Apply, CorrectPredictionRunsConsumerOnce) {
  std::atomic<int> ConsumerRuns{0};
  std::atomic<int> Seen{0};
  SpecResult<void> R = Speculation::apply<int>([] { return 42; },
                                               [] { return 42; },
                                               [&](int V) {
                                                 ++ConsumerRuns;
                                                 Seen = V;
                                               });
  EXPECT_EQ(ConsumerRuns.load(), 1);
  EXPECT_EQ(Seen.load(), 42);
  EXPECT_EQ(R.Stats.Mispredictions, 0);
}

TEST(Apply, MispredictionReexecutesConsumerWithCorrectValue) {
  std::atomic<int> LastSeen{-1};
  SpecResult<void> R = Speculation::apply<int>(
      [] { return 7; }, [] { return 99; }, [&](int V) { LastSeen = V; });
  // The final (validated) consumer execution uses the produced value.
  EXPECT_EQ(LastSeen.load(), 7);
  EXPECT_EQ(R.Stats.Mispredictions, 1);
  EXPECT_EQ(R.Stats.Reexecutions, 1);
}

TEST(Apply, ProducerExceptionPropagates) {
  EXPECT_THROW(Speculation::apply<int>(
                   []() -> int { throw std::runtime_error("producer"); },
                   [] { return 0; }, [](int) {}),
               std::runtime_error);
}

TEST(Apply, ValidConsumerExceptionPropagates) {
  EXPECT_THROW(Speculation::apply<int>([] { return 1; }, [] { return 1; },
                                       [](int) {
                                         throw std::runtime_error("consumer");
                                       }),
               std::runtime_error);
}

TEST(Apply, MispredictedConsumerExceptionIsSuppressed) {
  std::atomic<int> ValidRuns{0};
  // The speculative consumer (input 99) throws; the re-execution (input 7)
  // succeeds. The paper's library "hides all exceptions from code that was
  // speculatively executed with the wrong values".
  EXPECT_NO_THROW(Speculation::apply<int>([] { return 7; },
                                          [] { return 99; },
                                          [&](int V) {
                                            if (V == 99)
                                              throw std::runtime_error("bad");
                                            ++ValidRuns;
                                          }));
  EXPECT_EQ(ValidRuns.load(), 1);
}

TEST(Apply, PredictorExceptionFallsBackToNonSpeculative) {
  std::atomic<int> Seen{0};
  EXPECT_NO_THROW(Speculation::apply<int>(
      [] { return 5; }, []() -> int { throw std::runtime_error("pred"); },
      [&](int V) { Seen = V; }));
  EXPECT_EQ(Seen.load(), 5);
}

TEST(Apply, CorrectPredictionCountsOnePredictionPoint) {
  SpecResult<void> R = Speculation::apply<int>(
      [] { return 42; }, [] { return 42; }, [](int) {});
  EXPECT_EQ(R.Stats.Predictions, 1);
  EXPECT_EQ(R.Stats.FailedPredictions, 0);
  EXPECT_EQ(R.Stats.Mispredictions, 0);
}

TEST(Apply, MispredictionIsNotAFailedPrediction) {
  // A real guess existed and was compared: that is a misprediction, never
  // a failed prediction.
  SpecResult<void> R = Speculation::apply<int>(
      [] { return 7; }, [] { return 99; }, [](int) {});
  EXPECT_EQ(R.Stats.Predictions, 1);
  EXPECT_EQ(R.Stats.Mispredictions, 1);
  EXPECT_EQ(R.Stats.FailedPredictions, 0);
}

TEST(Apply, ThrowingPredictorCountsFailedPredictionNotMisprediction) {
  // The predictor never produced a guess, so nothing was compared: the
  // prediction point resolved without a guess (failed), and the consumer
  // ran once non-speculatively (one re-execution).
  SpecResult<void> R = Speculation::apply<int>(
      [] { return 5; }, []() -> int { throw std::runtime_error("pred"); },
      [](int) {});
  EXPECT_EQ(R.Stats.Predictions, 1);
  EXPECT_EQ(R.Stats.FailedPredictions, 1);
  EXPECT_EQ(R.Stats.Mispredictions, 0);
  EXPECT_EQ(R.Stats.Reexecutions, 1);
}

TEST(Apply, ProducerExceptionCountsNoPredictionPoint) {
  // The check step never ran, so no prediction point was resolved; the
  // snapshot sink still publishes what was gathered before the throw.
  stats::Snapshot Snap;
  EXPECT_THROW(Speculation::apply<int>(
                   []() -> int { throw std::runtime_error("producer"); },
                   [] { return 0; }, [](int) {},
                   SpecConfig().threads(2).statsOut(&Snap)),
               std::runtime_error);
  EXPECT_EQ(Snap.Spec.Tasks, 1);
  EXPECT_EQ(Snap.Spec.Predictions, 0);
  EXPECT_EQ(Snap.Spec.FailedPredictions, 0);
}

TEST(Apply, EagerProducerAbortGoesNonSpeculative) {
  // A predictor far slower than the producer: with the Section 3.3 fix
  // enabled, apply() aborts the speculation instead of waiting for it.
  std::atomic<int> Seen{0};
  std::atomic<bool> PredictorCancelled{false};
  SpecResult<void> R = Speculation::apply<int>(
      [] { return 7; },
      [&PredictorCancelled]() -> int {
        // Busy predictor that honours cooperative cancellation.
        for (int Spin = 0; Spin < 200000000; ++Spin)
          if (currentTaskCancelled()) {
            PredictorCancelled = true;
            return -1;
          }
        return 7;
      },
      [&Seen](int V) { Seen = V; }, SpecConfig().eagerProducerAbort());
  EXPECT_EQ(Seen.load(), 7);
  // Every resolution path is a resolved prediction point, including the
  // eager abort (which resolves without a guess).
  EXPECT_EQ(R.Stats.Predictions, 1);
  // Either the producer truly beat the predictor (the common case: one
  // re-execution, predictor observed the cancel) or the predictor
  // finished first and normal validation ran; both must be correct.
  if (R.Stats.Reexecutions > 0) {
    EXPECT_TRUE(PredictorCancelled.load());
    EXPECT_EQ(R.Stats.FailedPredictions, 1);
    EXPECT_EQ(R.Stats.Mispredictions, 0);
  }
}

TEST(Apply, EagerProducerAbortOnSharedExecutor) {
  // The same Section 3.3 semantics must hold when the run shares a
  // persistent executor instead of spawning a transient one.
  SpecExecutor Ex(2);
  SpecConfig Cfg = SpecConfig().executor(Ex).eagerProducerAbort();
  for (int Round = 0; Round < 3; ++Round) {
    std::atomic<int> Seen{0};
    std::atomic<bool> PredictorCancelled{false};
    SpecResult<void> R = Speculation::apply<int>(
        [] { return 7; },
        [&PredictorCancelled]() -> int {
          for (int Spin = 0; Spin < 200000000; ++Spin)
            if (currentTaskCancelled()) {
              PredictorCancelled = true;
              return -1;
            }
          return 7;
        },
        [&Seen](int V) { Seen = V; }, Cfg);
    EXPECT_EQ(Seen.load(), 7);
    if (R.Stats.Reexecutions > 0) {
      EXPECT_TRUE(PredictorCancelled.load());
    }
  }
  // Exception semantics are unchanged on a shared executor.
  EXPECT_THROW(Speculation::apply<int>(
                   []() -> int { throw std::runtime_error("producer"); },
                   [] { return 0; }, [](int) {}, Cfg),
               std::runtime_error);
  EXPECT_THROW(Speculation::apply<int>([] { return 1; }, [] { return 1; },
                                       [](int) {
                                         throw std::runtime_error("consumer");
                                       },
                                       Cfg),
               std::runtime_error);
}

TEST(Apply, UnitEncodingOfParallelComposition) {
  // The paper: e1 || e2 is spec with a unit prediction. Model unit as a
  // trivially-equal int.
  std::atomic<bool> ProducerRan{false}, ConsumerRan{false};
  Speculation::apply<int>(
      [&] {
        ProducerRan = true;
        return 0;
      },
      [] { return 0; },
      [&](int) { ConsumerRan = true; });
  EXPECT_TRUE(ProducerRan.load());
  EXPECT_TRUE(ConsumerRan.load());
}

//===----------------------------------------------------------------------===//
// Speculation::iterate
//===----------------------------------------------------------------------===//

/// Reference semantics: acc = pred(Low); for i: acc = body(i, acc).
template <typename BodyFn, typename PredFn>
int64_t sequentialFold(int64_t Low, int64_t High, BodyFn Body, PredFn Pred) {
  int64_t Acc = Pred(Low);
  for (int64_t I = Low; I < High; ++I)
    Acc = Body(I, Acc);
  return Acc;
}

TEST(Iterate, EmptyRangeReturnsInitialValue) {
  auto R = Speculation::iterate<int64_t>(
      5, 5, [](int64_t, int64_t A) { return A + 1; },
      [](int64_t) { return int64_t(123); });
  EXPECT_EQ(R.Value, 123);
  EXPECT_EQ(R.Stats.Tasks, 0);
}

TEST(Iterate, SingleIteration) {
  auto R = Speculation::iterate<int64_t>(
      0, 1, [](int64_t I, int64_t A) { return A + I + 10; },
      [](int64_t) { return int64_t(5); });
  EXPECT_EQ(R.Value, 15);
}

struct IterateCase {
  ValidationMode Mode;
  unsigned Threads;
  double PredictorAccuracy; // probability a prediction is correct
};

class IterateModes : public ::testing::TestWithParam<IterateCase> {};

TEST_P(IterateModes, MatchesSequentialFoldUnderAnyPredictor) {
  const IterateCase &C = GetParam();
  Rng R(0xABC ^ C.Threads ^ unsigned(C.PredictorAccuracy * 100));
  for (int Trial = 0; Trial < 8; ++Trial) {
    int64_t N = 1 + static_cast<int64_t>(R.nextBelow(40));
    // A nontrivial fold: acc' = acc * 31 + i (mod small prime).
    auto Body = [](int64_t I, int64_t A) { return (A * 31 + I) % 100003; };
    auto Truth = sequentialFold(0, N, Body, [](int64_t) { return int64_t(1); });

    // Predictor: correct with the configured probability, else garbage.
    std::vector<int64_t> TruthAt(static_cast<size_t>(N) + 1);
    TruthAt[0] = 1;
    for (int64_t I = 0; I < N; ++I)
      TruthAt[static_cast<size_t>(I) + 1] = Body(I, TruthAt[static_cast<size_t>(I)]);
    Rng PredRng(R.next());
    std::vector<int64_t> Predicted(static_cast<size_t>(N));
    for (int64_t I = 0; I < N; ++I)
      Predicted[static_cast<size_t>(I)] =
          (I == 0 || PredRng.nextBool(C.PredictorAccuracy))
              ? TruthAt[static_cast<size_t>(I)]
              : PredRng.nextInRange(0, 100002);

    auto Got = Speculation::iterate<int64_t>(
        0, N, Body,
        [&Predicted](int64_t I) { return Predicted[static_cast<size_t>(I)]; },
        SpecConfig().mode(C.Mode).threads(C.Threads));
    EXPECT_EQ(Got.Value, Truth) << "N=" << N;
    EXPECT_EQ(Got.Stats.Predictions, N - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IterateModes,
    ::testing::Values(IterateCase{ValidationMode::Seq, 1, 1.0},
                      IterateCase{ValidationMode::Seq, 4, 1.0},
                      IterateCase{ValidationMode::Seq, 4, 0.5},
                      IterateCase{ValidationMode::Seq, 2, 0.0},
                      IterateCase{ValidationMode::Par, 1, 1.0},
                      IterateCase{ValidationMode::Par, 4, 1.0},
                      IterateCase{ValidationMode::Par, 4, 0.5},
                      IterateCase{ValidationMode::Par, 2, 0.0}));

TEST(Iterate, PerfectPredictionReportsNoMispredictions) {
  // Truth: acc_i = i(i+1)/2 starting at 0.
  auto Pred = [](int64_t I) { return I * (I - 1) / 2; };
  auto R = Speculation::iterate<int64_t>(
      1, 20, [](int64_t I, int64_t A) { return A + I; }, Pred,
      SpecConfig().threads(4));
  EXPECT_EQ(R.Value, 190);
  EXPECT_EQ(R.Stats.Mispredictions, 0);
  EXPECT_EQ(R.Stats.Reexecutions, 0);
  EXPECT_EQ(R.Stats.Tasks, 19);
}

TEST(Iterate, AllWrongPredictionsStillCorrectAndCountsReexecutions) {
  auto R = Speculation::iterate<int64_t>(
      0, 10, [](int64_t, int64_t A) { return A + 1; },
      [](int64_t I) { return I == 0 ? int64_t(0) : int64_t(-999); });
  EXPECT_EQ(R.Value, 10);
  EXPECT_EQ(R.Stats.Mispredictions, 9);
  EXPECT_EQ(R.Stats.Reexecutions, 9);
}

TEST(Iterate, SequentialExceptionSemantics) {
  // Iteration 3 (valid) throws; its exception must surface even though
  // later iterations were speculatively executed.
  std::atomic<int> BodiesRun{0};
  try {
    Speculation::iterate<int64_t>(
        0, 10,
        [&BodiesRun](int64_t I, int64_t A) {
          ++BodiesRun;
          if (I == 3)
            throw std::runtime_error("iteration 3");
          return A + 1;
        },
        [](int64_t I) { return I; }, SpecConfig().threads(4));
    FAIL() << "expected an exception";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "iteration 3");
  }
}

TEST(Iterate, MispredictedIterationExceptionSuppressed) {
  // Iteration 2's *speculative* run (wrong input 777) throws; the valid
  // re-execution succeeds, so no exception escapes.
  auto R = Speculation::iterate<int64_t>(
      0, 5,
      [](int64_t, int64_t A) {
        if (A == 777)
          throw std::runtime_error("speculative garbage");
        return A + 1;
      },
      [](int64_t I) { return I == 2 ? int64_t(777) : I; },
      SpecConfig().threads(4));
  EXPECT_EQ(R.Value, 5);
}

TEST(Iterate, CustomEqualityRelaxesValidation) {
  // Equality modulo 10: predictions that differ by a multiple of 10 from
  // the true value are accepted (the paper's relaxed-Equals use case).
  // With a body that only depends on the input mod 10, this is safe.
  auto EqMod10 = [](int64_t A, int64_t B) { return A % 10 == B % 10; };
  auto R = Speculation::iterate<int64_t>(
      0, 6, [](int64_t, int64_t A) { return (A + 3) % 10; },
      [](int64_t I) { return (3 * I) % 10 + 10 * I; }, SpecConfig(), EqMod10);
  EXPECT_EQ(R.Value % 10, (6 * 3) % 10);
  EXPECT_EQ(R.Stats.Mispredictions, 0) << "all predictions correct modulo 10";
}

TEST(Iterate, CooperativeCancellationIsVisibleToBodies) {
  // A mispredicted long-running body observes cancellation and exits
  // early. We assert that cancellation is eventually signalled.
  std::atomic<bool> SawCancel{false};
  Speculation::iterate<int64_t>(
      0, 3,
      [&SawCancel](int64_t I, int64_t A) {
        if (I == 2 && A == 555) {
          // Wrong-input speculative run: spin until cancelled.
          for (int Spin = 0; Spin < 100000000; ++Spin) {
            if (currentTaskCancelled()) {
              SawCancel = true;
              break;
            }
          }
          return int64_t(-1);
        }
        return A + 1;
      },
      [](int64_t I) { return I == 2 ? int64_t(555) : I; },
      SpecConfig().threads(2));
  EXPECT_TRUE(SawCancel.load());
}

TEST(Iterate, SharedExecutorCanBeReused) {
  SpecExecutor Ex(3);
  SpecConfig Cfg = SpecConfig().executor(Ex);
  for (int Round = 0; Round < 5; ++Round) {
    auto R = Speculation::iterate<int64_t>(
        0, 8, [](int64_t I, int64_t A) { return A + I; },
        [](int64_t I) { return I * (I - 1) / 2; }, Cfg);
    EXPECT_EQ(R.Value, 28);
  }
}

TEST(Iterate, OwnedExecutorHandleCanBeReused) {
  // An owned shard handle serves any number of runs without rebuilding
  // workers between them.
  std::shared_ptr<SpecExecutor> Ex = SpecExecutor::create(3);
  SpecConfig Cfg = SpecConfig().executor(Ex);
  for (int Round = 0; Round < 5; ++Round) {
    auto R = Speculation::iterate<int64_t>(
        0, 8, [](int64_t I, int64_t A) { return A + I; },
        [](int64_t I) { return I * (I - 1) / 2; }, Cfg);
    EXPECT_EQ(R.Value, 28);
  }
}

TEST(Iterate, SharedSlotWritesFinalValuesAreValidOnesUnderParMode) {
  // The quiescence guarantee: even with wrong predictions, Par-mode
  // chaining, and garbage attempts writing the same slots, the final
  // array contents come from executions with correct inputs.
  Rng R(4242);
  for (int Trial = 0; Trial < 10; ++Trial) {
    const int64_t N = 12;
    std::vector<int64_t> Out(static_cast<size_t>(N), -1);
    uint64_t Salt = R.next() % 1000;
    auto Body = [&Out, Salt](int64_t I, int64_t A) {
      int64_t V = (A * 7 + I + static_cast<int64_t>(Salt)) % 10007;
      Out[static_cast<size_t>(I)] = V; // the rollback-free slot write
      return V;
    };
    Rng PredRng(R.next());
    std::vector<int64_t> Pred(static_cast<size_t>(N));
    for (int64_t I = 0; I < N; ++I)
      Pred[static_cast<size_t>(I)] =
          I == 0 ? 1 : PredRng.nextInRange(0, 10006);
    auto Got = Speculation::iterate<int64_t>(
        0, N, Body,
        [&Pred](int64_t I) { return Pred[static_cast<size_t>(I)]; },
        SpecConfig().mode(ValidationMode::Par).threads(4));
    // Sequential reference.
    std::vector<int64_t> Ref(static_cast<size_t>(N));
    int64_t A = 1;
    for (int64_t I = 0; I < N; ++I) {
      A = (A * 7 + I + static_cast<int64_t>(Salt)) % 10007;
      Ref[static_cast<size_t>(I)] = A;
    }
    EXPECT_EQ(Got.Value, Ref.back());
    EXPECT_EQ(Out, Ref) << "slot contents must come from valid executions";
  }
}

//===----------------------------------------------------------------------===//
// Nested speculation on a shared executor (the former deadlock)
//===----------------------------------------------------------------------===//

TEST(Nested, IterateInsideIterateOnOneSharedExecutorCompletes) {
  // Regression: on the old fixed FIFO pool this deadlocked — the outer
  // bodies occupied every worker while their inner runs' attempts sat
  // queued forever. With help-while-waiting the blocked outer bodies
  // drain the inner attempts themselves.
  SpecExecutor Ex(2);
  SpecConfig Cfg = SpecConfig().executor(Ex);
  auto R = Speculation::iterate<int64_t>(
      0, 6,
      [&](int64_t I, int64_t Acc) {
        auto Inner = Speculation::iterate<int64_t>(
            0, 5, [I](int64_t J, int64_t A) { return A + I * J; },
            [I](int64_t J) { return I * J * (J - 1) / 2; }, Cfg);
        return Acc + Inner.Value;
      },
      [](int64_t I) {
        // Closed form of the outer accumulator: sum_{k<I} 10k.
        return 10 * I * (I - 1) / 2;
      },
      Cfg);
  EXPECT_EQ(R.Value, 150);
}

TEST(Nested, IterateInsideIterateOnSingleWorkerExecutorCompletes) {
  // The worst case: one worker serves both nesting levels, so every inner
  // attempt *must* be executed by a helping wait somewhere.
  SpecExecutor Ex(1);
  SpecConfig Cfg = SpecConfig().executor(Ex);
  auto R = Speculation::iterate<int64_t>(
      0, 6,
      [&](int64_t I, int64_t Acc) {
        auto Inner = Speculation::iterate<int64_t>(
            0, 5, [I](int64_t J, int64_t A) { return A + I * J; },
            [I](int64_t J) { return I * J * (J - 1) / 2; }, Cfg);
        return Acc + Inner.Value;
      },
      [](int64_t I) { return 10 * I * (I - 1) / 2; }, Cfg);
  EXPECT_EQ(R.Value, 150);
}

TEST(Nested, MispredictedNestedRunsOnSharedExecutorStayCorrect) {
  // Nesting plus forced mispredictions at both levels and Par-mode
  // chaining — the stress combination for helping waits.
  SpecExecutor Ex(2);
  SpecConfig Cfg =
      SpecConfig().executor(Ex).mode(ValidationMode::Par);
  auto R = Speculation::iterate<int64_t>(
      0, 5,
      [&](int64_t, int64_t Acc) {
        auto Inner = Speculation::iterate<int64_t>(
            0, 4, [](int64_t, int64_t A) { return A + 1; },
            [](int64_t J) { return J == 0 ? int64_t(0) : int64_t(-9); },
            Cfg);
        return Acc + Inner.Value; // always +4
      },
      [](int64_t I) { return I == 0 ? int64_t(0) : int64_t(-7); }, Cfg);
  EXPECT_EQ(R.Value, 20);
}

TEST(Nested, NestedRunsOnDefaultShardByDefault) {
  // Default-configured runs share SpecExecutor::defaultShard(); nesting
  // them must complete regardless of the machine's core count.
  auto R = Speculation::iterate<int64_t>(
      0, 4,
      [](int64_t I, int64_t Acc) {
        auto Inner = Speculation::iterate<int64_t>(
            0, 3, [I](int64_t J, int64_t A) { return A + I + J; },
            [I](int64_t J) { return I * J + J * (J - 1) / 2; });
        return Acc + Inner.Value;
      },
      [](int64_t I) { return 3 * I * (I - 1) / 2 + 3 * I; });
  // Inner(I) = 3I + 3; sum over I<4 = 3*6 + 12 = 30... computed: each
  // inner = sum_{J<3}(I+J) = 3I + 3.
  EXPECT_EQ(R.Value, 3 * 6 + 4 * 3);
}

TEST(Nested, ApplyInsideIterateOnSharedExecutorCompletes) {
  SpecExecutor Ex(2);
  SpecConfig Cfg = SpecConfig().executor(Ex);
  auto R = Speculation::iterate<int64_t>(
      0, 6,
      [&](int64_t I, int64_t Acc) {
        int64_t Got = 0;
        Speculation::apply<int64_t>(
            [I] { return I * 2; }, [I] { return I * 2; },
            [&Got](int64_t V) { Got = V; }, Cfg);
        return Acc + Got;
      },
      [](int64_t I) { return I * (I - 1); }, Cfg);
  EXPECT_EQ(R.Value, 30);
}

//===----------------------------------------------------------------------===//
// Speculation::iterateChunked
//===----------------------------------------------------------------------===//

TEST(IterateChunked, MatchesSequentialFoldWithPerfectChunkPredictions) {
  // acc' = acc + i starting at 0: truth entering i is i(i-1)/2.
  auto Body = [](int64_t I, int64_t A) { return A + I; };
  auto Pred = [](int64_t I) { return I * (I - 1) / 2; };
  auto R = Speculation::iterateChunked<int64_t>(0, 40, 8, Body, Pred,
                                                SpecConfig().threads(4));
  EXPECT_EQ(R.Value, 40 * 39 / 2);
  // Chunk-granular stats: 5 chunks, one prediction per boundary.
  EXPECT_EQ(R.Stats.Tasks, 5);
  EXPECT_EQ(R.Stats.Predictions, 4);
  EXPECT_EQ(R.Stats.Mispredictions, 0);
  EXPECT_EQ(R.Stats.Reexecutions, 0);
}

TEST(IterateChunked, ForcedMispredictionsStillCorrect) {
  // Garbage predictions at every chunk boundary: every chunk past the
  // first re-executes, and the result still matches the sequential fold.
  auto Body = [](int64_t I, int64_t A) { return (A * 31 + I) % 100003; };
  auto Pred = [](int64_t I) { return I == 0 ? int64_t(1) : int64_t(-7); };
  int64_t Truth = sequentialFold(0, 37, Body, Pred);
  for (ValidationMode Mode : {ValidationMode::Seq, ValidationMode::Par}) {
    auto R = Speculation::iterateChunked<int64_t>(
        0, 37, 5, Body, Pred, SpecConfig().threads(4).mode(Mode));
    EXPECT_EQ(R.Value, Truth);
    EXPECT_GE(R.Stats.Tasks, 8); // ceil(37/5) = 8 chunks (Par may chain more)
    EXPECT_EQ(R.Stats.Predictions, 7);
    EXPECT_EQ(R.Stats.Mispredictions, 7);
    EXPECT_GE(R.Stats.Reexecutions, Mode == ValidationMode::Seq ? 7 : 0);
  }
}

TEST(IterateChunked, ChunkSizeLargerThanRangeIsOneTask) {
  auto R = Speculation::iterateChunked<int64_t>(
      3, 9, 100, [](int64_t I, int64_t A) { return A + I; },
      [](int64_t) { return int64_t(0); });
  EXPECT_EQ(R.Value, 3 + 4 + 5 + 6 + 7 + 8);
  EXPECT_EQ(R.Stats.Tasks, 1);
  EXPECT_EQ(R.Stats.Predictions, 0);
}

TEST(IterateChunked, EmptyRangeReturnsInitialValue) {
  auto R = Speculation::iterateChunked<int64_t>(
      5, 5, 4, [](int64_t, int64_t A) { return A + 1; },
      [](int64_t) { return int64_t(77); });
  EXPECT_EQ(R.Value, 77);
  EXPECT_EQ(R.Stats.Tasks, 0);
}

TEST(IterateChunked, RandomizedAgainstSequentialFold) {
  Rng R(0xC0FFEE);
  for (int Trial = 0; Trial < 12; ++Trial) {
    int64_t N = 1 + static_cast<int64_t>(R.nextBelow(70));
    int64_t ChunkSize = 1 + static_cast<int64_t>(R.nextBelow(9));
    uint64_t Salt = R.next() % 997;
    auto Body = [Salt](int64_t I, int64_t A) {
      int64_t X = A ^ (I * 2654435761u);
      X = (X % 2 == 0) ? X / 2 + static_cast<int64_t>(Salt) : 3 * X + 1;
      return X % 1000003;
    };
    auto Pred = [&](int64_t I) {
      return I == 0 ? int64_t(7) : static_cast<int64_t>((I * Salt) % 1000003);
    };
    int64_t Truth = sequentialFold(0, N, Body, Pred);
    auto Got = Speculation::iterateChunked<int64_t>(
        0, N, ChunkSize, Body, Pred,
        SpecConfig()
            .threads(1 + static_cast<unsigned>(R.nextBelow(4)))
            .mode(R.nextBool(0.5) ? ValidationMode::Seq
                                  : ValidationMode::Par));
    EXPECT_EQ(Got.Value, Truth) << "N=" << N << " ChunkSize=" << ChunkSize;
  }
}

TEST(IterateChunkedLocal, FinalizersRunPerChunkInOrder) {
  // Chunk locals accumulate per-iteration products; finalizers must fire
  // once per chunk, in chunk order, with the validated local state.
  std::vector<int64_t> PublishedChunks;
  std::vector<int64_t> Published;
  auto R = Speculation::iterateChunkedLocal<int64_t, std::vector<int64_t>>(
      0, 10, 4, [] { return std::vector<int64_t>(); },
      [](int64_t I, std::vector<int64_t> &Local, int64_t In) {
        Local.push_back(I * 100 + In);
        return In + 1;
      },
      [](int64_t I) { return (I % 8 == 4) ? int64_t(-5) : I; },
      [&](int64_t Chunk, std::vector<int64_t> &Local) {
        PublishedChunks.push_back(Chunk);
        for (int64_t V : Local)
          Published.push_back(V);
      },
      SpecConfig().threads(3));
  EXPECT_EQ(R.Value, 10);
  EXPECT_EQ(PublishedChunks, (std::vector<int64_t>{0, 1, 2}));
  ASSERT_EQ(Published.size(), 10u);
  for (int64_t I = 0; I < 10; ++I)
    EXPECT_EQ(Published[static_cast<size_t>(I)], I * 100 + I)
        << "finalized local state must come from the validated execution";
}

//===----------------------------------------------------------------------===//
// Speculation::iterateLocal
//===----------------------------------------------------------------------===//

TEST(IterateLocal, FinalizersRunInOrderExactlyOncePerIteration) {
  std::vector<int64_t> Published;
  // Each iteration computes locally; only validated locals get published.
  // Predictions for odd iterations are wrong, forcing re-executions.
  auto R = Speculation::iterateLocal<int64_t, std::vector<int64_t>>(
      0, 12, [] { return std::vector<int64_t>(); },
      [](int64_t I, std::vector<int64_t> &Local, int64_t In) {
        Local.push_back(I * 100 + In);
        return In + 1;
      },
      [](int64_t I) { return (I % 2 == 1) ? int64_t(-5) : I; },
      [&Published](int64_t, std::vector<int64_t> &Local) {
        for (int64_t V : Local)
          Published.push_back(V);
      },
      SpecConfig().threads(4));
  EXPECT_EQ(R.Value, 12);
  ASSERT_EQ(Published.size(), 12u);
  for (int64_t I = 0; I < 12; ++I)
    EXPECT_EQ(Published[static_cast<size_t>(I)], I * 100 + I)
        << "finalized local state must come from the validated execution";
}

TEST(Iterate, NestedSpeculationWithTransientPools) {
  // Nested iterate with each level on its own transient executor (the
  // pre-SpecExecutor workaround) must keep working.
  auto R = Speculation::iterate<int64_t>(
      0, 6,
      [](int64_t I, int64_t Acc) {
        auto Inner = Speculation::iterate<int64_t>(
            0, 5, [I](int64_t J, int64_t A) { return A + I * J; },
            [I](int64_t J) { return I * J * (J - 1) / 2; },
            SpecConfig().threads(2));
        return Acc + Inner.Value;
      },
      [](int64_t I) {
        // Closed form of the outer accumulator: sum_{k<I} 10k.
        return 10 * I * (I - 1) / 2;
      },
      SpecConfig().threads(2));
  EXPECT_EQ(R.Value, 150);
}

TEST(IterateLocal, FinalizerExceptionPropagates) {
  EXPECT_THROW(
      (Speculation::iterateLocal<int64_t, int>(
          0, 4, [] { return 0; },
          [](int64_t, int &, int64_t In) { return In + 1; },
          [](int64_t I) { return I; },
          [](int64_t I, int &) {
            if (I == 1)
              throw std::runtime_error("finalizer");
          })),
      std::runtime_error);
}

//===----------------------------------------------------------------------===//
// Removal tests: the one-release deprecated forwards (sharedExecutor(),
// the SpeculationStats* stats sink, SpecExecutor::process(), the
// ThreadPool shim) are gone. The replacements must cover everything the
// forwards did — ownership-conveying executor resolution and throw-safe
// stats publication through stats::Snapshot.
//===----------------------------------------------------------------------===//

TEST(RemovedForwards, ResolvedExecutorConveysOwnership) {
  // resolvedExecutor() replaced sharedExecutor(): same resolution order,
  // but the handle names the ownership a raw pointer could not.
  EXPECT_EQ(SpecConfig().resolvedExecutor(), SpecExecutor::defaultShard());
  EXPECT_EQ(SpecConfig().threads(3).resolvedExecutor(), nullptr);
  std::shared_ptr<SpecExecutor> Ex = SpecExecutor::create(2);
  EXPECT_EQ(SpecConfig().executor(Ex).resolvedExecutor(), Ex);
  // The returned handle keeps the executor alive on its own.
  std::shared_ptr<SpecExecutor> Held =
      SpecConfig().executor(Ex).resolvedExecutor();
  Ex.reset();
  EXPECT_GE(Held->numThreads(), 1u);
}

TEST(RemovedForwards, SnapshotSinkFillsOnSuccess) {
  stats::Snapshot Snap;
  auto R = Speculation::iterate<int64_t>(
      0, 8, [](int64_t I, int64_t A) { return A + I; },
      [](int64_t I) { return I * (I - 1) / 2; },
      SpecConfig().threads(2).statsOut(&Snap));
  EXPECT_EQ(R.Value, 28);
  EXPECT_EQ(Snap.Spec.Tasks, 8);
  EXPECT_EQ(Snap.Spec.Predictions, 7);
  EXPECT_EQ(Snap.Spec.Mispredictions, 0);
}

TEST(RemovedForwards, SnapshotSinkFillsOnThrow) {
  // A correct prediction whose validated consumer throws: the exception
  // propagates, but the stats gathered before the throw must still reach
  // the snapshot sink — the throw-safety the removed SpeculationStats*
  // sink used to provide.
  stats::Snapshot Snap;
  SpecConfig Cfg;
  Cfg.statsOut(&Snap);
  EXPECT_THROW(Speculation::apply<int>([] { return 1; }, [] { return 1; },
                                       [](int) {
                                         throw std::runtime_error("consumer");
                                       },
                                       Cfg),
               std::runtime_error);
  EXPECT_EQ(Snap.Spec.Tasks, 1);
  EXPECT_EQ(Snap.Spec.Predictions, 1);
  EXPECT_EQ(Snap.Spec.Mispredictions, 0);
  EXPECT_EQ(Snap.Spec.FailedPredictions, 0);
}

//===----------------------------------------------------------------------===//
// Argument validation
//===----------------------------------------------------------------------===//

TEST(IterateChunked, NonPositiveChunkSizeThrows) {
  auto Body = [](int64_t I, int64_t A) { return A + I; };
  auto Pred = [](int64_t) { return int64_t(0); };
  for (int64_t Bad : {int64_t(0), int64_t(-1), int64_t(-100)}) {
    EXPECT_THROW(Speculation::iterateChunked<int64_t>(0, 10, Bad, Body, Pred),
                 std::invalid_argument);
    EXPECT_THROW(
        (Speculation::iterateChunkedLocal<int64_t, int>(
            0, 10, Bad, [] { return 0; },
            [](int64_t I, int &, int64_t A) { return A + I; }, Pred,
            [](int64_t, int &) {})),
        std::invalid_argument);
  }
}

//===----------------------------------------------------------------------===//
// Executor statistics
//===----------------------------------------------------------------------===//

TEST(Executor, StatsAccountForEveryTask) {
  SpecExecutor Ex(2);
  ExecutorStats Before = Ex.stats();
  std::atomic<int> Ran{0};
  const int N = 64;
  for (int I = 0; I < N; ++I)
    Ex.submit([&Ran] { ++Ran; });
  Ex.waitIdle();
  EXPECT_EQ(Ran.load(), N);
  ExecutorStats D = Ex.stats() - Before;
  EXPECT_EQ(D.Submits, static_cast<uint64_t>(N));
  // Every executed task was popped exactly once, from some deque.
  EXPECT_EQ(D.OwnPops + D.InjectionPops + D.Steals, static_cast<uint64_t>(N));
  EXPECT_GE(D.PeakQueueDepth, 1u);
}

TEST(Executor, StatsCountHelpRuns) {
  SpecExecutor Ex(1);
  ExecutorStats Before = Ex.stats();
  std::atomic<int> Ran{0};
  // The first task parks until the other eight are done; with a single
  // worker, whichever thread (worker or this one) picks it up, the
  // remaining tasks can only drain through tryRunOneTask() on the other.
  Ex.submit([&Ran] {
    while (Ran.load() < 8)
      std::this_thread::yield();
    ++Ran;
  });
  for (int I = 0; I < 8; ++I)
    Ex.submit([&Ran] { ++Ran; });
  while (Ran.load() < 9)
    Ex.tryRunOneTask();
  Ex.waitIdle();
  ExecutorStats D = Ex.stats() - Before;
  EXPECT_EQ(D.Submits, 9u);
  EXPECT_GE(D.HelpRuns, 1u);
}

TEST(Executor, StatsStringNamesEveryCounter) {
  ExecutorStats S;
  S.Submits = 1;
  std::string Str = S.str();
  for (const char *Key : {"submits=", "own-pops=", "injection-pops=",
                          "steals=", "help-runs=", "peak-queue="})
    EXPECT_NE(Str.find(Key), std::string::npos) << Key;
}

//===----------------------------------------------------------------------===//
// Telemetry
//===----------------------------------------------------------------------===//

/// Events of \p Kind in \p Events, keyed by attempt id.
std::map<uint64_t, std::vector<SpecEvent>>
eventsByAttempt(const std::vector<SpecEvent> &Events) {
  std::map<uint64_t, std::vector<SpecEvent>> ByAttempt;
  for (const SpecEvent &E : Events)
    if (E.AttemptId != 0)
      ByAttempt[E.AttemptId].push_back(E);
  return ByAttempt;
}

uint64_t countKind(const std::vector<SpecEvent> &Events, SpecEventKind Kind,
                   int64_t Index) {
  uint64_t N = 0;
  for (const SpecEvent &E : Events)
    if (E.Kind == Kind && E.Index == Index)
      ++N;
  return N;
}

TEST(Telemetry, ApplyRecordsTheAttemptLifecycle) {
  Tracer Tr;
  Speculation::apply<int>([] { return 7; }, [] { return 99; }, [](int) {},
                          SpecConfig().trace(&Tr));
  std::vector<SpecEvent> Ev = Tr.snapshot();
  EXPECT_EQ(countKind(Ev, SpecEventKind::Dispatch, 0), 1u);
  EXPECT_EQ(countKind(Ev, SpecEventKind::Mispredict, 0), 1u);
  EXPECT_EQ(countKind(Ev, SpecEventKind::Reexecute, 0), 1u);
  EXPECT_EQ(countKind(Ev, SpecEventKind::Finalize, 0), 1u);
  EXPECT_EQ(countKind(Ev, SpecEventKind::ValidateAccept, 0), 0u);
}

TEST(Telemetry, EventsOrderDispatchStartFinishPerAttempt) {
  // Forced mispredictions in both validation modes: every attempt that
  // started must show dispatch < start < finish in the process-wide
  // sequence order, and every chunk resolves as exactly one of
  // validate-accept or re-execute, with exactly one finalize.
  const int64_t N = 48, ChunkSize = 8, Chunks = N / ChunkSize;
  auto Body = [](int64_t I, int64_t A) { return A + I; };
  auto Pred = [](int64_t I) { return I == 0 ? int64_t(0) : int64_t(-1); };
  for (ValidationMode Mode : {ValidationMode::Seq, ValidationMode::Par}) {
    Tracer Tr;
    auto R = Speculation::iterateChunked<int64_t>(
        0, N, ChunkSize, Body, Pred,
        SpecConfig().threads(3).mode(Mode).trace(&Tr));
    EXPECT_EQ(R.Value, N * (N - 1) / 2);
    std::vector<SpecEvent> Ev = Tr.snapshot();
    EXPECT_EQ(Tr.droppedEvents(), 0u);

    for (const auto &Entry : eventsByAttempt(Ev)) {
      const std::vector<SpecEvent> &A = Entry.second;
      uint64_t DispatchSeq = 0, StartSeq = 0, FinishSeq = 0;
      bool HasDispatch = false, HasStart = false, HasFinish = false;
      for (const SpecEvent &E : A) {
        if (E.Kind == SpecEventKind::Dispatch) {
          DispatchSeq = E.Seq;
          HasDispatch = true;
        } else if (E.Kind == SpecEventKind::Start) {
          StartSeq = E.Seq;
          HasStart = true;
        } else if (E.Kind == SpecEventKind::Finish) {
          FinishSeq = E.Seq;
          HasFinish = true;
        }
      }
      EXPECT_TRUE(HasDispatch) << "attempt " << Entry.first;
      if (HasStart) {
        EXPECT_LT(DispatchSeq, StartSeq) << "attempt " << Entry.first;
        ASSERT_TRUE(HasFinish) << "attempt " << Entry.first;
        EXPECT_LT(StartSeq, FinishSeq) << "attempt " << Entry.first;
      }
    }

    for (int64_t C = 0; C < Chunks; ++C) {
      EXPECT_EQ(countKind(Ev, SpecEventKind::ValidateAccept, C) +
                    countKind(Ev, SpecEventKind::Reexecute, C),
                1u)
          << "mode " << int(Mode) << " chunk " << C
          << ": accept xor re-execute";
      EXPECT_EQ(countKind(Ev, SpecEventKind::Finalize, C), 1u)
          << "mode " << int(Mode) << " chunk " << C;
      EXPECT_GE(countKind(Ev, SpecEventKind::Dispatch, C), 1u)
          << "mode " << int(Mode) << " chunk " << C;
    }
    // Chunk 0's input is the known initial value; every later chunk's
    // prediction was forced wrong, so the validator flags exactly one
    // misprediction per chunk. In Seq mode that always re-executes; in
    // Par mode an accepted corrective chain may resolve it instead (the
    // accept-xor-re-execute invariant above covers both).
    EXPECT_EQ(countKind(Ev, SpecEventKind::ValidateAccept, 0), 1u);
    for (int64_t C = 1; C < Chunks; ++C) {
      EXPECT_EQ(countKind(Ev, SpecEventKind::Mispredict, C), 1u)
          << "mode " << int(Mode) << " chunk " << C;
      if (Mode == ValidationMode::Seq) {
        EXPECT_EQ(countKind(Ev, SpecEventKind::Reexecute, C), 1u)
            << "chunk " << C;
      }
    }
  }
}

TEST(Telemetry, PerfectPredictionsAcceptEveryChunk) {
  Tracer Tr;
  auto R = Speculation::iterateChunked<int64_t>(
      0, 40, 8, [](int64_t I, int64_t A) { return A + I; },
      [](int64_t I) { return I * (I - 1) / 2; },
      SpecConfig().threads(4).trace(&Tr));
  EXPECT_EQ(R.Value, 40 * 39 / 2);
  std::vector<SpecEvent> Ev = Tr.snapshot();
  for (int64_t C = 0; C < 5; ++C) {
    EXPECT_EQ(countKind(Ev, SpecEventKind::ValidateAccept, C), 1u);
    EXPECT_EQ(countKind(Ev, SpecEventKind::Reexecute, C), 0u);
    EXPECT_EQ(countKind(Ev, SpecEventKind::Mispredict, C), 0u);
  }
}

TEST(Telemetry, SnapshotIsTotallyOrderedBySeq) {
  Tracer Tr;
  Speculation::iterate<int64_t>(
      0, 24, [](int64_t I, int64_t A) { return A + I; },
      [](int64_t I) { return I % 3 == 0 ? int64_t(-1) : I * (I - 1) / 2; },
      SpecConfig().threads(4).trace(&Tr));
  std::vector<SpecEvent> Ev = Tr.snapshot();
  ASSERT_FALSE(Ev.empty());
  for (size_t I = 1; I < Ev.size(); ++I)
    EXPECT_LT(Ev[I - 1].Seq, Ev[I].Seq);
}

TEST(Telemetry, TinyRingOverwritesAndReportsDrops) {
  // 16 is the smallest ring the tracer allows; the calling thread records
  // at least three events per apply(), so 16 rounds must overflow it.
  Tracer Tr(/*RingCapacity=*/16);
  for (int Round = 0; Round < 16; ++Round)
    Speculation::apply<int>([] { return 1; }, [] { return 1; }, [](int) {},
                            SpecConfig().trace(&Tr));
  EXPECT_GT(Tr.droppedEvents(), 0u);
  std::vector<SpecEvent> Ev = Tr.snapshot();
  EXPECT_FALSE(Ev.empty());
  // Each surviving ring retains at most its capacity.
  std::map<uint32_t, uint64_t> PerThread;
  for (const SpecEvent &E : Ev)
    ++PerThread[E.ThreadId];
  for (const auto &Entry : PerThread)
    EXPECT_LE(Entry.second, 16u);
}

TEST(Telemetry, ChromeTraceIsWellFormed) {
  Tracer Tr;
  Speculation::iterateChunked<int64_t>(
      0, 32, 8, [](int64_t I, int64_t A) { return A + I; },
      [](int64_t I) { return I == 0 ? int64_t(0) : int64_t(-1); },
      SpecConfig().threads(2).trace(&Tr));
  std::ostringstream OS;
  Tr.writeChromeTrace(OS);
  std::string Json = OS.str();
  ASSERT_FALSE(Json.empty());
  EXPECT_EQ(Json.front(), '[');
  EXPECT_EQ(Json[Json.find_last_not_of(" \n")], ']');
  for (const char *Needle :
       {"\"ph\"", "\"ts\"", "\"pid\"", "\"tid\"", "dispatch",
        "validate-accept", "re-execute", "mispredict"})
    EXPECT_NE(Json.find(Needle), std::string::npos) << Needle;
  // Quick structural sanity: braces balance.
  int64_t Depth = 0;
  for (char C : Json) {
    if (C == '{')
      ++Depth;
    else if (C == '}')
      --Depth;
    EXPECT_GE(Depth, 0);
  }
  EXPECT_EQ(Depth, 0);
}

TEST(Telemetry, SummaryNamesEventKinds) {
  Tracer Tr;
  Speculation::apply<int>([] { return 7; }, [] { return 99; }, [](int) {},
                          SpecConfig().trace(&Tr));
  std::string S = Tr.summary();
  for (const char *Needle : {"dispatch=", "mispredict=", "re-execute="})
    EXPECT_NE(S.find(Needle), std::string::npos) << S;
}

/// Property sweep across seeds: a fold with data-dependent control flow,
/// a half-accurate predictor, random thread counts and both modes.
class IterateFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IterateFuzz, AgreesWithSequentialFold) {
  Rng R(GetParam());
  for (int Trial = 0; Trial < 10; ++Trial) {
    int64_t N = 1 + static_cast<int64_t>(R.nextBelow(60));
    uint64_t Salt = R.next() % 997;
    auto Body = [Salt](int64_t I, int64_t A) {
      int64_t X = A ^ (I * 2654435761u);
      X = (X % 2 == 0) ? X / 2 + static_cast<int64_t>(Salt) : 3 * X + 1;
      return X % 1000003;
    };
    auto Pred = [&](int64_t I) {
      return I == 0 ? int64_t(7) : static_cast<int64_t>((I * Salt) % 1000003);
    };
    int64_t Truth = sequentialFold(0, N, Body, Pred);
    SpecConfig Cfg =
        SpecConfig()
            .mode(R.nextBool(0.5) ? ValidationMode::Seq : ValidationMode::Par)
            .threads(1 + static_cast<unsigned>(R.nextBelow(6)));
    EXPECT_EQ(Speculation::iterate<int64_t>(0, N, Body, Pred, Cfg).Value,
              Truth);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IterateFuzz,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

} // namespace
