//===- tests/runtime_test.cpp - Speculation runtime tests -----------------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Speculation.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

using namespace specpar;
using namespace specpar::rt;

namespace {

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool Pool(4);
  std::atomic<int> Count{0};
  for (int I = 0; I < 100; ++I)
    Pool.submit([&Count] { ++Count; });
  Pool.waitIdle();
  EXPECT_EQ(Count.load(), 100);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> Count{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I < 50; ++I)
      Pool.submit([&Count] { ++Count; });
  }
  EXPECT_EQ(Count.load(), 50);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.numThreads(), 1u);
  std::atomic<bool> Ran{false};
  Pool.submit([&Ran] { Ran = true; });
  Pool.waitIdle();
  EXPECT_TRUE(Ran.load());
}

//===----------------------------------------------------------------------===//
// Speculation::apply
//===----------------------------------------------------------------------===//

TEST(Apply, CorrectPredictionRunsConsumerOnce) {
  std::atomic<int> ConsumerRuns{0};
  std::atomic<int> Seen{0};
  SpeculationStats Stats;
  Options Opts;
  Opts.Stats = &Stats;
  Speculation::apply<int>([] { return 42; }, [] { return 42; },
                          [&](int V) {
                            ++ConsumerRuns;
                            Seen = V;
                          },
                          Opts);
  EXPECT_EQ(ConsumerRuns.load(), 1);
  EXPECT_EQ(Seen.load(), 42);
  EXPECT_EQ(Stats.Mispredictions, 0);
}

TEST(Apply, MispredictionReexecutesConsumerWithCorrectValue) {
  std::atomic<int> LastSeen{-1};
  SpeculationStats Stats;
  Options Opts;
  Opts.Stats = &Stats;
  Speculation::apply<int>([] { return 7; }, [] { return 99; },
                          [&](int V) { LastSeen = V; }, Opts);
  // The final (validated) consumer execution uses the produced value.
  EXPECT_EQ(LastSeen.load(), 7);
  EXPECT_EQ(Stats.Mispredictions, 1);
  EXPECT_EQ(Stats.Reexecutions, 1);
}

TEST(Apply, ProducerExceptionPropagates) {
  EXPECT_THROW(Speculation::apply<int>(
                   []() -> int { throw std::runtime_error("producer"); },
                   [] { return 0; }, [](int) {}),
               std::runtime_error);
}

TEST(Apply, ValidConsumerExceptionPropagates) {
  EXPECT_THROW(Speculation::apply<int>([] { return 1; }, [] { return 1; },
                                       [](int) {
                                         throw std::runtime_error("consumer");
                                       }),
               std::runtime_error);
}

TEST(Apply, MispredictedConsumerExceptionIsSuppressed) {
  std::atomic<int> ValidRuns{0};
  // The speculative consumer (input 99) throws; the re-execution (input 7)
  // succeeds. The paper's library "hides all exceptions from code that was
  // speculatively executed with the wrong values".
  EXPECT_NO_THROW(Speculation::apply<int>([] { return 7; },
                                          [] { return 99; },
                                          [&](int V) {
                                            if (V == 99)
                                              throw std::runtime_error("bad");
                                            ++ValidRuns;
                                          }));
  EXPECT_EQ(ValidRuns.load(), 1);
}

TEST(Apply, PredictorExceptionFallsBackToNonSpeculative) {
  std::atomic<int> Seen{0};
  EXPECT_NO_THROW(Speculation::apply<int>(
      [] { return 5; }, []() -> int { throw std::runtime_error("pred"); },
      [&](int V) { Seen = V; }));
  EXPECT_EQ(Seen.load(), 5);
}

TEST(Apply, EagerProducerAbortGoesNonSpeculative) {
  // A predictor far slower than the producer: with the Section 3.3 fix
  // enabled, apply() aborts the speculation instead of waiting for it.
  std::atomic<int> Seen{0};
  std::atomic<bool> PredictorCancelled{false};
  SpeculationStats Stats;
  Options Opts;
  Opts.Stats = &Stats;
  Opts.EagerProducerAbort = true;
  Speculation::apply<int>(
      [] { return 7; },
      [&PredictorCancelled]() -> int {
        // Busy predictor that honours cooperative cancellation.
        for (int Spin = 0; Spin < 200000000; ++Spin)
          if (currentTaskCancelled()) {
            PredictorCancelled = true;
            return -1;
          }
        return 7;
      },
      [&Seen](int V) { Seen = V; }, Opts);
  EXPECT_EQ(Seen.load(), 7);
  // Either the producer truly beat the predictor (the common case: one
  // re-execution, predictor observed the cancel) or the predictor
  // finished first and normal validation ran; both must be correct.
  if (Stats.Reexecutions > 0) {
    EXPECT_TRUE(PredictorCancelled.load());
  }
}

TEST(Apply, UnitEncodingOfParallelComposition) {
  // The paper: e1 || e2 is spec with a unit prediction. Model unit as a
  // trivially-equal int.
  std::atomic<bool> ProducerRan{false}, ConsumerRan{false};
  Speculation::apply<int>(
      [&] {
        ProducerRan = true;
        return 0;
      },
      [] { return 0; },
      [&](int) { ConsumerRan = true; });
  EXPECT_TRUE(ProducerRan.load());
  EXPECT_TRUE(ConsumerRan.load());
}

//===----------------------------------------------------------------------===//
// Speculation::iterate
//===----------------------------------------------------------------------===//

/// Reference semantics: acc = pred(Low); for i: acc = body(i, acc).
template <typename BodyFn, typename PredFn>
int64_t sequentialFold(int64_t Low, int64_t High, BodyFn Body, PredFn Pred) {
  int64_t Acc = Pred(Low);
  for (int64_t I = Low; I < High; ++I)
    Acc = Body(I, Acc);
  return Acc;
}

TEST(Iterate, EmptyRangeReturnsInitialValue) {
  int64_t R = Speculation::iterate<int64_t>(
      5, 5, [](int64_t, int64_t A) { return A + 1; },
      [](int64_t) { return int64_t(123); });
  EXPECT_EQ(R, 123);
}

TEST(Iterate, SingleIteration) {
  int64_t R = Speculation::iterate<int64_t>(
      0, 1, [](int64_t I, int64_t A) { return A + I + 10; },
      [](int64_t) { return int64_t(5); });
  EXPECT_EQ(R, 15);
}

struct IterateCase {
  ValidationMode Mode;
  unsigned Threads;
  double PredictorAccuracy; // probability a prediction is correct
};

class IterateModes : public ::testing::TestWithParam<IterateCase> {};

TEST_P(IterateModes, MatchesSequentialFoldUnderAnyPredictor) {
  const IterateCase &C = GetParam();
  Rng R(0xABC ^ C.Threads ^ unsigned(C.PredictorAccuracy * 100));
  for (int Trial = 0; Trial < 8; ++Trial) {
    int64_t N = 1 + static_cast<int64_t>(R.nextBelow(40));
    // A nontrivial fold: acc' = acc * 31 + i (mod small prime).
    auto Body = [](int64_t I, int64_t A) { return (A * 31 + I) % 100003; };
    auto Truth = sequentialFold(0, N, Body, [](int64_t) { return int64_t(1); });

    // Predictor: correct with the configured probability, else garbage.
    std::vector<int64_t> TruthAt(static_cast<size_t>(N) + 1);
    TruthAt[0] = 1;
    for (int64_t I = 0; I < N; ++I)
      TruthAt[static_cast<size_t>(I) + 1] = Body(I, TruthAt[static_cast<size_t>(I)]);
    Rng PredRng(R.next());
    std::vector<int64_t> Predicted(static_cast<size_t>(N));
    for (int64_t I = 0; I < N; ++I)
      Predicted[static_cast<size_t>(I)] =
          (I == 0 || PredRng.nextBool(C.PredictorAccuracy))
              ? TruthAt[static_cast<size_t>(I)]
              : PredRng.nextInRange(0, 100002);

    Options Opts;
    Opts.Mode = C.Mode;
    Opts.NumThreads = C.Threads;
    SpeculationStats Stats;
    Opts.Stats = &Stats;
    int64_t Got = Speculation::iterate<int64_t>(
        0, N, Body,
        [&Predicted](int64_t I) { return Predicted[static_cast<size_t>(I)]; },
        Opts);
    EXPECT_EQ(Got, Truth) << "N=" << N;
    EXPECT_EQ(Stats.Predictions, N - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IterateModes,
    ::testing::Values(IterateCase{ValidationMode::Seq, 1, 1.0},
                      IterateCase{ValidationMode::Seq, 4, 1.0},
                      IterateCase{ValidationMode::Seq, 4, 0.5},
                      IterateCase{ValidationMode::Seq, 2, 0.0},
                      IterateCase{ValidationMode::Par, 1, 1.0},
                      IterateCase{ValidationMode::Par, 4, 1.0},
                      IterateCase{ValidationMode::Par, 4, 0.5},
                      IterateCase{ValidationMode::Par, 2, 0.0}));

TEST(Iterate, PerfectPredictionReportsNoMispredictions) {
  // Truth: acc_i = i(i+1)/2 starting at 0.
  auto Pred = [](int64_t I) { return I * (I - 1) / 2; };
  SpeculationStats Stats;
  Options Opts;
  Opts.Stats = &Stats;
  Opts.NumThreads = 4;
  int64_t R = Speculation::iterate<int64_t>(
      1, 20, [](int64_t I, int64_t A) { return A + I; }, Pred, Opts);
  EXPECT_EQ(R, 190);
  EXPECT_EQ(Stats.Mispredictions, 0);
  EXPECT_EQ(Stats.Reexecutions, 0);
  EXPECT_EQ(Stats.Tasks, 19);
}

TEST(Iterate, AllWrongPredictionsStillCorrectAndCountsReexecutions) {
  SpeculationStats Stats;
  Options Opts;
  Opts.Stats = &Stats;
  int64_t R = Speculation::iterate<int64_t>(
      0, 10, [](int64_t, int64_t A) { return A + 1; },
      [](int64_t I) { return I == 0 ? int64_t(0) : int64_t(-999); }, Opts);
  EXPECT_EQ(R, 10);
  EXPECT_EQ(Stats.Mispredictions, 9);
  EXPECT_EQ(Stats.Reexecutions, 9);
}

TEST(Iterate, SequentialExceptionSemantics) {
  // Iteration 3 (valid) throws; its exception must surface even though
  // later iterations were speculatively executed.
  std::atomic<int> BodiesRun{0};
  Options Opts;
  Opts.NumThreads = 4;
  try {
    Speculation::iterate<int64_t>(
        0, 10,
        [&BodiesRun](int64_t I, int64_t A) {
          ++BodiesRun;
          if (I == 3)
            throw std::runtime_error("iteration 3");
          return A + 1;
        },
        [](int64_t I) { return I; }, Opts);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "iteration 3");
  }
}

TEST(Iterate, MispredictedIterationExceptionSuppressed) {
  // Iteration 2's *speculative* run (wrong input 777) throws; the valid
  // re-execution succeeds, so no exception escapes.
  Options Opts;
  Opts.NumThreads = 4;
  int64_t R = Speculation::iterate<int64_t>(
      0, 5,
      [](int64_t, int64_t A) {
        if (A == 777)
          throw std::runtime_error("speculative garbage");
        return A + 1;
      },
      [](int64_t I) { return I == 2 ? int64_t(777) : I; }, Opts);
  EXPECT_EQ(R, 5);
}

TEST(Iterate, CustomEqualityRelaxesValidation) {
  // Equality modulo 10: predictions that differ by a multiple of 10 from
  // the true value are accepted (the paper's relaxed-Equals use case).
  // With a body that only depends on the input mod 10, this is safe.
  auto EqMod10 = [](int64_t A, int64_t B) { return A % 10 == B % 10; };
  SpeculationStats Stats;
  Options Opts;
  Opts.Stats = &Stats;
  int64_t R = Speculation::iterate<int64_t>(
      0, 6, [](int64_t, int64_t A) { return (A + 3) % 10; },
      [](int64_t I) { return (3 * I) % 10 + 10 * I; }, Opts, EqMod10);
  EXPECT_EQ(R % 10, (6 * 3) % 10);
  EXPECT_EQ(Stats.Mispredictions, 0) << "all predictions correct modulo 10";
}

TEST(Iterate, CooperativeCancellationIsVisibleToBodies) {
  // A mispredicted long-running body observes cancellation and exits
  // early. We assert that cancellation is eventually signalled.
  std::atomic<bool> SawCancel{false};
  Options Opts;
  Opts.NumThreads = 2;
  Speculation::iterate<int64_t>(
      0, 3,
      [&SawCancel](int64_t I, int64_t A) {
        if (I == 2 && A == 555) {
          // Wrong-input speculative run: spin until cancelled.
          for (int Spin = 0; Spin < 100000000; ++Spin) {
            if (currentTaskCancelled()) {
              SawCancel = true;
              break;
            }
          }
          return int64_t(-1);
        }
        return A + 1;
      },
      [](int64_t I) { return I == 2 ? int64_t(555) : I; }, Opts);
  EXPECT_TRUE(SawCancel.load());
}

TEST(Iterate, SharedPoolCanBeReused) {
  ThreadPool Pool(3);
  Options Opts;
  Opts.Pool = &Pool;
  for (int Round = 0; Round < 5; ++Round) {
    int64_t R = Speculation::iterate<int64_t>(
        0, 8, [](int64_t I, int64_t A) { return A + I; },
        [](int64_t I) { return I * (I - 1) / 2; }, Opts);
    EXPECT_EQ(R, 28);
  }
}

TEST(Iterate, SharedSlotWritesFinalValuesAreValidOnesUnderParMode) {
  // The quiescence guarantee: even with wrong predictions, Par-mode
  // chaining, and garbage attempts writing the same slots, the final
  // array contents come from executions with correct inputs.
  Rng R(4242);
  for (int Trial = 0; Trial < 10; ++Trial) {
    const int64_t N = 12;
    std::vector<int64_t> Out(static_cast<size_t>(N), -1);
    Options Opts;
    Opts.Mode = ValidationMode::Par;
    Opts.NumThreads = 4;
    uint64_t Salt = R.next() % 1000;
    auto Body = [&Out, Salt](int64_t I, int64_t A) {
      int64_t V = (A * 7 + I + static_cast<int64_t>(Salt)) % 10007;
      Out[static_cast<size_t>(I)] = V; // the rollback-free slot write
      return V;
    };
    Rng PredRng(R.next());
    std::vector<int64_t> Pred(static_cast<size_t>(N));
    for (int64_t I = 0; I < N; ++I)
      Pred[static_cast<size_t>(I)] =
          I == 0 ? 1 : PredRng.nextInRange(0, 10006);
    int64_t Got = Speculation::iterate<int64_t>(
        0, N, Body,
        [&Pred](int64_t I) { return Pred[static_cast<size_t>(I)]; }, Opts);
    // Sequential reference.
    std::vector<int64_t> Ref(static_cast<size_t>(N));
    int64_t A = 1;
    for (int64_t I = 0; I < N; ++I) {
      A = (A * 7 + I + static_cast<int64_t>(Salt)) % 10007;
      Ref[static_cast<size_t>(I)] = A;
    }
    EXPECT_EQ(Got, Ref.back());
    EXPECT_EQ(Out, Ref) << "slot contents must come from valid executions";
  }
}

//===----------------------------------------------------------------------===//
// Speculation::iterateLocal
//===----------------------------------------------------------------------===//

TEST(IterateLocal, FinalizersRunInOrderExactlyOncePerIteration) {
  std::vector<int64_t> Published;
  Options Opts;
  Opts.NumThreads = 4;
  // Each iteration computes locally; only validated locals get published.
  // Predictions for odd iterations are wrong, forcing re-executions.
  int64_t R = Speculation::iterateLocal<int64_t, std::vector<int64_t>>(
      0, 12, [] { return std::vector<int64_t>(); },
      [](int64_t I, std::vector<int64_t> &Local, int64_t In) {
        Local.push_back(I * 100 + In);
        return In + 1;
      },
      [](int64_t I) { return (I % 2 == 1) ? int64_t(-5) : I; },
      [&Published](int64_t, std::vector<int64_t> &Local) {
        for (int64_t V : Local)
          Published.push_back(V);
      },
      Opts);
  EXPECT_EQ(R, 12);
  ASSERT_EQ(Published.size(), 12u);
  for (int64_t I = 0; I < 12; ++I)
    EXPECT_EQ(Published[static_cast<size_t>(I)], I * 100 + I)
        << "finalized local state must come from the validated execution";
}

TEST(Iterate, NestedSpeculationWithTransientPools) {
  // Nested iterate: the outer loop's body runs a whole inner speculative
  // loop. Each level uses its own (transient) pool — see Options::Pool.
  int64_t R = Speculation::iterate<int64_t>(
      0, 6,
      [](int64_t I, int64_t Acc) {
        int64_t Inner = Speculation::iterate<int64_t>(
            0, 5, [I](int64_t J, int64_t A) { return A + I * J; },
            [I](int64_t J) { return I * J * (J - 1) / 2; });
        return Acc + Inner;
      },
      [](int64_t I) {
        // Closed form of the outer accumulator: sum_{k<I} 10k.
        return 10 * I * (I - 1) / 2;
      });
  EXPECT_EQ(R, 150);
}

TEST(IterateLocal, FinalizerExceptionPropagates) {
  EXPECT_THROW(
      (Speculation::iterateLocal<int64_t, int>(
          0, 4, [] { return 0; },
          [](int64_t, int &, int64_t In) { return In + 1; },
          [](int64_t I) { return I; },
          [](int64_t I, int &) {
            if (I == 1)
              throw std::runtime_error("finalizer");
          })),
      std::runtime_error);
}

/// Property sweep across seeds: a fold with data-dependent control flow,
/// a half-accurate predictor, random thread counts and both modes.
class IterateFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IterateFuzz, AgreesWithSequentialFold) {
  Rng R(GetParam());
  for (int Trial = 0; Trial < 10; ++Trial) {
    int64_t N = 1 + static_cast<int64_t>(R.nextBelow(60));
    uint64_t Salt = R.next() % 997;
    auto Body = [Salt](int64_t I, int64_t A) {
      int64_t X = A ^ (I * 2654435761u);
      X = (X % 2 == 0) ? X / 2 + static_cast<int64_t>(Salt) : 3 * X + 1;
      return X % 1000003;
    };
    auto Pred = [&](int64_t I) {
      return I == 0 ? int64_t(7) : static_cast<int64_t>((I * Salt) % 1000003);
    };
    int64_t Truth = sequentialFold(0, N, Body, Pred);
    Options Opts;
    Opts.Mode = R.nextBool(0.5) ? ValidationMode::Seq : ValidationMode::Par;
    Opts.NumThreads = 1 + static_cast<unsigned>(R.nextBelow(6));
    EXPECT_EQ(Speculation::iterate<int64_t>(0, N, Body, Pred, Opts), Truth);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IterateFuzz,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

} // namespace
