//===- tests/effectcheck_test.cpp - Declared-summary checker tests ---------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/EffectCheck.h"

#include <gtest/gtest.h>

using namespace specpar;
using namespace specpar::rt;

namespace {

//===----------------------------------------------------------------------===//
// Range algebra
//===----------------------------------------------------------------------===//

TEST(RangeRef, ScalarOverlap) {
  EffectRegions R;
  RegionId A = R.intern("a"), B = R.intern("b");
  EXPECT_TRUE(RangeRef::scalar(A).mayOverlap(RangeRef::scalar(A)));
  EXPECT_FALSE(RangeRef::scalar(A).mayOverlap(RangeRef::scalar(B)));
}

TEST(RangeRef, AdjacentIterationSlotsDisjoint) {
  EffectRegions R;
  RegionId Out = R.intern("out");
  RangeRef At = RangeRef::slot(Out, LinIndex::affine(1, 0));   // out[i]
  RangeRef Next = At.shifted(1);                               // out[i+1]
  EXPECT_FALSE(At.mayOverlap(Next));
  EXPECT_TRUE(At.mayOverlap(At));
}

TEST(RangeRef, SegmentRangesShiftAndStayDisjoint) {
  EffectRegions R;
  RegionId Out = R.intern("out");
  // out[32i .. 32i+31] vs the next iteration's segment.
  RangeRef Seg = RangeRef::range(Out, LinIndex::affine(32, 0),
                                 LinIndex::affine(32, 31));
  EXPECT_FALSE(Seg.mayOverlap(Seg.shifted(1)));
  // A one-slot bleed into the neighbour overlaps.
  RangeRef Bleed = RangeRef::range(Out, LinIndex::affine(32, 0),
                                   LinIndex::affine(32, 32));
  EXPECT_TRUE(Bleed.mayOverlap(Bleed.shifted(1)));
}

TEST(RangeRef, DifferentCoefficientsAreConservative) {
  EffectRegions R;
  RegionId A = R.intern("a");
  RangeRef X = RangeRef::slot(A, LinIndex::affine(2, 0)); // a[2i]
  RangeRef Y = RangeRef::slot(A, LinIndex::affine(3, 1)); // a[3i+1]
  EXPECT_TRUE(X.mayOverlap(Y)) << "incomparable bounds must be conservative";
}

TEST(RangeRef, MustContain) {
  EffectRegions R;
  RegionId A = R.intern("a");
  RangeRef Big = RangeRef::range(A, LinIndex::affine(8, 0),
                                 LinIndex::affine(8, 7));
  RangeRef Small = RangeRef::range(A, LinIndex::affine(8, 2),
                                   LinIndex::affine(8, 5));
  EXPECT_TRUE(Big.mustContain(Small));
  EXPECT_FALSE(Small.mustContain(Big));
  EXPECT_TRUE(RangeRef::whole(A).mustContain(Small));
  EXPECT_FALSE(Big.mustContain(RangeRef::slot(A, LinIndex::affine(1, 0))))
      << "different coefficients cannot prove containment";
}

//===----------------------------------------------------------------------===//
// Apply-site checks
//===----------------------------------------------------------------------===//

TEST(ApplySummaries, DisjointStateIsSafe) {
  EffectRegions R;
  RegionId In = R.intern("input"), Out = R.intern("output");
  EffectSummary Producer;
  Producer.Reads = {RangeRef::whole(In)};
  EffectSummary Predictor; // pure
  EffectSummary Consumer;
  Consumer.Writes = {RangeRef::scalar(Out)};
  Consumer.MustWrites = {RangeRef::scalar(Out)};
  SummaryCheckResult V =
      checkApplySummaries(Producer, Predictor, Consumer, R);
  EXPECT_TRUE(V.Safe) << V.str();
}

TEST(ApplySummaries, ProducerWritesConsumerReadsViolatesA) {
  EffectRegions R;
  RegionId C = R.intern("cell");
  EffectSummary Producer;
  Producer.Writes = {RangeRef::scalar(C)};
  EffectSummary Consumer;
  Consumer.Reads = {RangeRef::scalar(C)};
  SummaryCheckResult V =
      checkApplySummaries(Producer, EffectSummary(), Consumer, R);
  EXPECT_FALSE(V.Safe);
  EXPECT_EQ(V.FailedCondition, "(a)");
  EXPECT_NE(V.Explanation.find("cell"), std::string::npos);
}

TEST(ApplySummaries, PredictorWritesViolate) {
  EffectRegions R;
  RegionId C = R.intern("cache");
  EffectSummary Producer;
  Producer.Reads = {RangeRef::scalar(C)};
  EffectSummary Predictor;
  Predictor.Writes = {RangeRef::scalar(C)};
  SummaryCheckResult V =
      checkApplySummaries(Producer, Predictor, EffectSummary(), R);
  EXPECT_FALSE(V.Safe);
  EXPECT_EQ(V.FailedCondition, "(b)");
}

TEST(ApplySummaries, UncoveredSpeculativeWriteViolatesE) {
  EffectRegions R;
  RegionId Out = R.intern("out");
  EffectSummary Consumer;
  Consumer.Writes = {RangeRef::scalar(Out)};
  // No MustWrites: a conditional write.
  SummaryCheckResult V = checkApplySummaries(EffectSummary(),
                                             EffectSummary(), Consumer, R);
  EXPECT_FALSE(V.Safe);
  EXPECT_EQ(V.FailedCondition, "(e)");
}

//===----------------------------------------------------------------------===//
// Iterate-site checks: the three benchmarks' real summaries
//===----------------------------------------------------------------------===//

TEST(IterateSummaries, LexerShapeIsSafe) {
  // Segment i reads input[Ki-Overlap .. Ki+K-1] (backtracking may re-read
  // before the segment) and writes tokens[Ki .. Ki+K-1] unconditionally.
  constexpr int64_t K = 4096, Overlap = 64;
  EffectRegions R;
  RegionId In = R.intern("input"), Toks = R.intern("tokens");
  EffectSummary Body;
  Body.Reads = {RangeRef::range(In, LinIndex::affine(K, -Overlap),
                                LinIndex::affine(K, K - 1))};
  Body.Writes = {RangeRef::range(Toks, LinIndex::affine(K, 0),
                                 LinIndex::affine(K, K - 1))};
  Body.MustWrites = Body.Writes;
  EffectSummary Guess;
  Guess.Reads = {RangeRef::range(In, LinIndex::affine(K, -Overlap),
                                 LinIndex::affine(K, -1))};
  SummaryCheckResult V = checkIterateSummaries(Body, Guess, R);
  EXPECT_TRUE(V.Safe) << V.str();
}

TEST(IterateSummaries, MwisForwardShapeIsSafe) {
  constexpr int64_t K = 1024;
  EffectRegions R;
  RegionId W = R.intern("weights"), D = R.intern("d");
  EffectSummary Body;
  Body.Reads = {RangeRef::range(W, LinIndex::affine(K, 0),
                                LinIndex::affine(K, K - 1))};
  Body.Writes = {RangeRef::range(D, LinIndex::affine(K, 0),
                                 LinIndex::affine(K, K - 1))};
  Body.MustWrites = Body.Writes;
  EffectSummary Guess;
  Guess.Reads = {RangeRef::range(W, LinIndex::affine(K, -32),
                                 LinIndex::affine(K, -1))};
  SummaryCheckResult V = checkIterateSummaries(Body, Guess, R);
  EXPECT_TRUE(V.Safe) << V.str();
}

TEST(IterateSummaries, SharedAccumulatorViolates) {
  EffectRegions R;
  RegionId Acc = R.intern("total");
  EffectSummary Body;
  Body.Reads = {RangeRef::scalar(Acc)};
  Body.Writes = {RangeRef::scalar(Acc)};
  Body.MustWrites = Body.Writes;
  SummaryCheckResult V = checkIterateSummaries(Body, EffectSummary(), R);
  EXPECT_FALSE(V.Safe);
  EXPECT_EQ(V.FailedCondition, "(a)");
}

TEST(IterateSummaries, NeighbourWriteViolatesC) {
  EffectRegions R;
  RegionId Out = R.intern("out");
  EffectSummary Body;
  // Writes out[i] and out[i+1].
  Body.Writes = {RangeRef::range(Out, LinIndex::affine(1, 0),
                                 LinIndex::affine(1, 1))};
  Body.MustWrites = Body.Writes;
  SummaryCheckResult V = checkIterateSummaries(Body, EffectSummary(), R);
  EXPECT_FALSE(V.Safe);
  EXPECT_EQ(V.FailedCondition, "(c)");
}

TEST(IterateSummaries, ConditionalSlotWriteViolatesE) {
  EffectRegions R;
  RegionId Out = R.intern("out");
  EffectSummary Body;
  Body.Writes = {RangeRef::slot(Out, LinIndex::affine(1, 0))};
  // MustWrites empty: the write is conditional on the (possibly wrong)
  // accumulator.
  SummaryCheckResult V = checkIterateSummaries(Body, EffectSummary(), R);
  EXPECT_FALSE(V.Safe);
  EXPECT_EQ(V.FailedCondition, "(e)");
}

TEST(IterateSummaries, ReadModifyWriteOfOwnSlotViolatesD) {
  EffectRegions R;
  RegionId A = R.intern("a");
  EffectSummary Body;
  Body.Reads = {RangeRef::slot(A, LinIndex::affine(1, 0))};
  Body.Writes = {RangeRef::slot(A, LinIndex::affine(1, 0))};
  Body.MustWrites = Body.Writes;
  SummaryCheckResult V = checkIterateSummaries(Body, EffectSummary(), R);
  EXPECT_FALSE(V.Safe);
  EXPECT_EQ(V.FailedCondition, "(d)");
}

TEST(IterateSummaries, StridedWritesSafe) {
  EffectRegions R;
  RegionId Out = R.intern("out");
  EffectSummary Body;
  Body.Writes = {RangeRef::slot(Out, LinIndex::affine(2, 0))}; // out[2i]
  Body.MustWrites = Body.Writes;
  SummaryCheckResult V = checkIterateSummaries(Body, EffectSummary(), R);
  EXPECT_TRUE(V.Safe) << V.str();
}

} // namespace
