//===- tests/profile_test.cpp - Profile-guided prediction tests -----------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//
//
// The ProfileStore persistence contracts (round-trip determinism, atomic
// publication, tolerant loading of damaged files) and the engine-side
// warm path: chunk/predictor seeding on warm runs, online predictor
// switching at degrade trips, and the run-end accounting that feeds it
// all back into the store.
//
//===----------------------------------------------------------------------===//

#include "runtime/ProfileStore.h"
#include "runtime/Speculation.h"
#include "runtime/Telemetry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace specpar;
using namespace specpar::rt;

namespace {

/// A unique file path under gtest's temp dir, removed on destruction.
struct TempFile {
  explicit TempFile(const std::string &Stem)
      : Path(testing::TempDir() + "specpar_" + Stem + "_" +
             std::to_string(reinterpret_cast<uintptr_t>(this)) + ".json") {
    std::remove(Path.c_str());
  }
  ~TempFile() { std::remove(Path.c_str()); }
  const std::string Path;
};

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

void spew(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out << Text;
}

ProfileStore::RunObservation obsWith(int64_t Chunk, int64_t UserHits,
                                     int64_t UserMisses) {
  ProfileStore::RunObservation Obs;
  Obs.FinalChunk = Chunk;
  Obs.Predictions = UserHits + UserMisses;
  Obs.BadPredictions = UserMisses;
  Obs.Predictors.emplace_back("user", PredictorProfile{UserHits, UserMisses});
  return Obs;
}

int countEvents(const std::vector<SpecEvent> &Events, SpecEventKind K) {
  int C = 0;
  for (const SpecEvent &E : Events)
    C += E.Kind == K;
  return C;
}

const SpecEvent *findEvent(const std::vector<SpecEvent> &Events,
                           SpecEventKind K) {
  for (const SpecEvent &E : Events)
    if (E.Kind == K)
      return &E;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// ProfileStore core
//===----------------------------------------------------------------------===//

TEST(ProfileStore, ColdSiteSeedsNothing) {
  ProfileStore Store;
  EXPECT_EQ(Store.seedChunk("never-seen"), 0);
  EXPECT_EQ(Store.bestPredictor("never-seen"), "");
  EXPECT_EQ(Store.site("never-seen").Runs, 0);
  EXPECT_EQ(Store.size(), 0u);
}

TEST(ProfileStore, RecordRunFoldsAndSeeds) {
  ProfileStore Store;
  Store.recordRun("lex.main", obsWith(/*Chunk=*/512, /*Hits=*/20, /*Miss=*/2));
  Store.recordRun("lex.main", obsWith(/*Chunk=*/640, /*Hits=*/30, /*Miss=*/1));

  SiteProfile S = Store.site("lex.main");
  EXPECT_EQ(S.Runs, 2);
  EXPECT_EQ(S.ChunkSize, 640); // most recent converged value wins
  EXPECT_EQ(S.Predictions, 53);
  EXPECT_EQ(S.BadPredictions, 3);
  EXPECT_EQ(S.Predictors.at("user").Hits, 50);
  EXPECT_EQ(S.Predictors.at("user").Misses, 3);
  EXPECT_EQ(Store.seedChunk("lex.main"), 640);
  EXPECT_EQ(Store.bestPredictor("lex.main"), "user");
}

TEST(ProfileStore, AutotuneOffRunsNeverClobberChunk) {
  ProfileStore Store;
  Store.recordRun("s", obsWith(256, 8, 0));
  // Plain-iterate / autotune-off runs report FinalChunk == 0; the
  // converged value from the autotuned run must survive them.
  Store.recordRun("s", obsWith(0, 8, 0));
  EXPECT_EQ(Store.seedChunk("s"), 256);
}

TEST(ProfileStore, BestPredictorNeedsEvidence) {
  ProfileStore Store;
  ProfileStore::RunObservation Obs;
  Obs.Predictors.emplace_back("last", PredictorProfile{3, 0});
  Store.recordRun("s", Obs);
  // 3 samples < the default floor of 8: too little to overrule the
  // caller's predictor.
  EXPECT_EQ(Store.bestPredictor("s"), "");
  EXPECT_EQ(Store.bestPredictor("s", /*MinSamples=*/2), "last");

  // Rate beats volume once the floor is met.
  ProfileStore::RunObservation Obs2;
  Obs2.Predictors.emplace_back("last", PredictorProfile{7, 0});
  Obs2.Predictors.emplace_back("user", PredictorProfile{60, 40});
  Store.recordRun("s", Obs2);
  EXPECT_EQ(Store.bestPredictor("s"), "last"); // 10/10 beats 60/100
}

TEST(ProfileStore, SaveLoadRoundTripIsDeterministic) {
  TempFile F1("roundtrip1"), F2("roundtrip2");
  ProfileStore Store;
  Store.recordRun("lex.main", obsWith(512, 20, 2));
  ProfileStore::RunObservation Odd;
  Odd.FinalChunk = 7;
  Odd.DegradeTrips = 3;
  Odd.PredictorSwitches = 1;
  Odd.Predictors.emplace_back("stride", PredictorProfile{5, 9});
  // Site names are arbitrary user strings: exercise the escaper.
  Store.recordRun("weird \"site\"\\with\nnasties\t\x01", Odd);
  ASSERT_TRUE(Store.save(F1.Path));

  ProfileStore Loaded;
  ASSERT_TRUE(Loaded.load(F1.Path));
  ASSERT_EQ(Loaded.size(), 2u);
  EXPECT_EQ(Loaded.sites(), Store.sites());
  SiteProfile S = Loaded.site("lex.main");
  EXPECT_EQ(S.Runs, 1);
  EXPECT_EQ(S.ChunkSize, 512);
  EXPECT_EQ(S.Predictors.at("user").Hits, 20);
  SiteProfile W = Loaded.site("weird \"site\"\\with\nnasties\t\x01");
  EXPECT_EQ(W.DegradeTrips, 3);
  EXPECT_EQ(W.PredictorSwitches, 1);
  EXPECT_EQ(W.Predictors.at("stride").Misses, 9);

  // Byte-identical re-serialization: the format has one canonical
  // rendering, so save(load(save(x))) is a fixed point.
  ASSERT_TRUE(Loaded.save(F2.Path));
  EXPECT_EQ(slurp(F1.Path), slurp(F2.Path));
}

TEST(ProfileStore, DamagedFilesLoadAsColdAndKeepPriorContents) {
  TempFile F("damaged");
  ProfileStore Seeded;
  Seeded.recordRun("keep-me", obsWith(128, 10, 0));

  // Missing file.
  EXPECT_FALSE(Seeded.load(F.Path + ".does-not-exist"));
  // Not JSON at all.
  spew(F.Path, "definitely not json");
  EXPECT_FALSE(Seeded.load(F.Path));
  // Truncated mid-document: save a valid store, chop it.
  ProfileStore Full;
  Full.recordRun("a", obsWith(64, 5, 5));
  Full.recordRun("b", obsWith(32, 2, 1));
  ASSERT_TRUE(Full.save(F.Path));
  std::string Text = slurp(F.Path);
  ASSERT_GT(Text.size(), 10u);
  spew(F.Path, Text.substr(0, Text.size() / 2));
  EXPECT_FALSE(Seeded.load(F.Path));
  // Trailing garbage after a valid document.
  spew(F.Path, Text + "trailing");
  EXPECT_FALSE(Seeded.load(F.Path));
  // Version mismatch.
  spew(F.Path, "{\"version\":999,\"sites\":{}}");
  EXPECT_FALSE(Seeded.load(F.Path));

  // Every failed load left the store exactly as it was.
  EXPECT_EQ(Seeded.size(), 1u);
  EXPECT_EQ(Seeded.seedChunk("keep-me"), 128);

  // And the undamaged file still loads.
  spew(F.Path, Text);
  EXPECT_TRUE(Seeded.load(F.Path));
  EXPECT_EQ(Seeded.size(), 2u);
  EXPECT_EQ(Seeded.seedChunk("keep-me"), 0); // load replaces, not merges
}

TEST(ProfileStore, ConcurrentRecordAndSaveNeverTearTheFile) {
  TempFile F("concurrent");
  ProfileStore Store;
  constexpr int Writers = 4, Rounds = 25;
  std::vector<std::thread> Threads;
  for (int W = 0; W < Writers; ++W)
    Threads.emplace_back([&, W] {
      const std::string Site = "site-" + std::to_string(W);
      for (int R = 0; R < Rounds; ++R) {
        Store.recordRun(Site, obsWith(/*Chunk=*/W + 1, /*Hits=*/1, 0));
        ASSERT_TRUE(Store.save(F.Path));
      }
    });
  // A concurrent reader: once the file exists, every load must see a
  // complete document (rename() publication is atomic).
  std::thread Reader([&] {
    ProfileStore Scratch;
    int Seen = 0;
    for (int R = 0; R < 200; ++R) {
      std::ifstream Probe(F.Path);
      if (!Probe.good())
        continue;
      Probe.close();
      ASSERT_TRUE(Scratch.load(F.Path));
      ++Seen;
    }
    (void)Seen;
  });
  for (auto &T : Threads)
    T.join();
  Reader.join();

  // After the dust settles, one more save publishes the full store and
  // a fresh load round-trips it.
  ASSERT_TRUE(Store.save(F.Path));
  ProfileStore Final;
  ASSERT_TRUE(Final.load(F.Path));
  ASSERT_EQ(Final.size(), static_cast<size_t>(Writers));
  for (int W = 0; W < Writers; ++W) {
    SiteProfile S = Final.site("site-" + std::to_string(W));
    EXPECT_EQ(S.Runs, Rounds);
    EXPECT_EQ(S.Predictors.at("user").Hits, Rounds);
  }
}

//===----------------------------------------------------------------------===//
// Engine integration: seeding, switching, recording
//===----------------------------------------------------------------------===//

/// Sequential oracle for the sum loop: Acc starts at 0, each iteration
/// adds I.
int64_t sumOracle(int64_t N) { return N * (N - 1) / 2; }
int64_t sumPredict(int64_t I) { return I * (I - 1) / 2; }

TEST(ProfileGuided, ColdRunRecordsWarmRunSeeds) {
  ProfileStore Store;
  const int64_t N = 4000;
  auto Body = [](int64_t I, int64_t In) {
    // A little work so the autotuner has something to measure.
    volatile int64_t Spin = 0;
    for (int K = 0; K < 40; ++K)
      Spin = Spin + K;
    (void)Spin;
    return In + I;
  };
  SpecConfig Cfg = SpecConfig()
                       .threads(2)
                       .autotune(/*TargetMicros=*/100)
                       .profile(&Store)
                       .profileSite("sum.loop");

  // Cold: nothing to seed, but the run records its convergence.
  auto Cold = Speculation::iterateChunked<int64_t>(0, N, /*ChunkSize=*/16,
                                                   Body, sumPredict, Cfg);
  EXPECT_EQ(Cold.Value, sumOracle(N));
  EXPECT_EQ(Cold.Stats.ProfileSeeds, 0);
  SiteProfile S = Store.site("sum.loop");
  EXPECT_EQ(S.Runs, 1);
  EXPECT_GT(S.ChunkSize, 0);
  EXPECT_EQ(S.ChunkSize, Cold.Stats.FinalChunk);
  EXPECT_EQ(S.Predictions, Cold.Stats.Predictions);
  // The exact user predictor dominated its shadow rivals.
  EXPECT_EQ(Store.bestPredictor("sum.loop"), "user");

  // Warm: the run announces the seed and starts from the converged
  // chunk and the historically best candidate.
  Tracer Tr;
  SpecConfig Warm = Cfg;
  Warm.trace(&Tr);
  auto Run2 = Speculation::iterateChunked<int64_t>(0, N, /*ChunkSize=*/16,
                                                   Body, sumPredict, Warm);
  EXPECT_EQ(Run2.Value, sumOracle(N));
  EXPECT_EQ(Run2.Stats.ProfileSeeds, 1);
  auto Events = Tr.snapshot();
  const SpecEvent *Seed = findEvent(Events, SpecEventKind::ProfileSeed);
  ASSERT_NE(Seed, nullptr);
  // First-wave chunk == the cold run's converged chunk, exactly (the
  // acceptance bar is within 5%; seeding from the store is bit-equal).
  EXPECT_EQ(Seed->Index, S.ChunkSize);
  EXPECT_EQ(Store.site("sum.loop").Runs, 2);
}

TEST(ProfileGuided, WarmRunAdoptsLastValuePredictorAndStopsMispredicting) {
  ProfileStore Store;
  const int64_t N = 400, Chunk = 10;
  // The loop-carried value is the constant 7; the user predictor knows
  // the initial value but guesses wrong everywhere else.
  auto Body = [](int64_t, int64_t In) { return In; };
  auto BadPredict = [](int64_t I) -> int64_t { return I == 0 ? 7 : -1; };
  SpecConfig Cfg =
      SpecConfig().threads(2).profile(&Store).profileSite("const.loop");

  auto Cold = Speculation::iterateChunked<int64_t>(0, N, Chunk, Body,
                                                   BadPredict, Cfg);
  EXPECT_EQ(Cold.Value, 7);
  EXPECT_GT(Cold.Stats.Mispredictions, 8); // every real prediction wrong
  // Shadow scoring saw last-value hitting every segment.
  EXPECT_EQ(Store.bestPredictor("const.loop"), "last");

  Tracer Tr;
  SpecConfig Warm = Cfg;
  Warm.trace(&Tr);
  auto Run2 = Speculation::iterateChunked<int64_t>(0, N, Chunk, Body,
                                                   BadPredict, Warm);
  EXPECT_EQ(Run2.Value, 7);
  EXPECT_EQ(Run2.Stats.ProfileSeeds, 1);
  EXPECT_EQ(Run2.Stats.Mispredictions, 0); // last-value is exact here
  const std::vector<SpecEvent> Events = Tr.snapshot();
  const SpecEvent *Seed = findEvent(Events, SpecEventKind::ProfileSeed);
  ASSERT_NE(Seed, nullptr);
  EXPECT_EQ(Seed->AttemptId, 1u); // candidate id 1 == "last"
}

TEST(ProfileGuided, DegradeTripSwitchesPredictorInsteadOfGoingSequential) {
  ProfileStore Store; // cold: the run starts on the (bad) user predictor
  const int64_t N = 2000, Chunk = 10;
  auto Body = [](int64_t, int64_t In) { return In; };
  auto BadPredict = [](int64_t I) -> int64_t { return I == 0 ? 7 : -1; };
  Tracer Tr;
  SpecConfig Cfg = SpecConfig()
                       .threads(2)
                       .degrade(/*MaxBadRate=*/0.5, /*Window=*/8)
                       .profile(&Store)
                       .profileSite("switchy")
                       .trace(&Tr);

  auto R = Speculation::iterateChunked<int64_t>(0, N, Chunk, Body, BadPredict,
                                                Cfg);
  EXPECT_EQ(R.Value, 7);
  // The trip was absorbed by a predictor switch: speculation continued.
  EXPECT_GE(R.Stats.PredictorSwitches, 1);
  EXPECT_EQ(R.Stats.DegradedChunks, 0);
  auto Events = Tr.snapshot();
  EXPECT_EQ(countEvents(Events, SpecEventKind::Degrade), 0);
  EXPECT_EQ(countEvents(Events, SpecEventKind::PredictorSwitch),
            static_cast<int>(R.Stats.PredictorSwitches));
  // The store remembers both the trip and the switch.
  SiteProfile S = Store.site("switchy");
  EXPECT_GE(S.DegradeTrips, 1);
  EXPECT_EQ(S.PredictorSwitches, R.Stats.PredictorSwitches);
}

TEST(ProfileGuided, UnpredictableSiteStillDegradesAfterSwitchesExhaust) {
  ProfileStore Store;
  const int64_t N = 600, Chunk = 4;
  // An LCG-evolving carried value: neither last-value nor stride can
  // track it, and the user predictor is deliberately wrong too.
  auto Body = [](int64_t, uint64_t In) {
    return In * 6364136223846793005ULL + 1442695040888963407ULL;
  };
  auto BadPredict = [](int64_t I) -> uint64_t { return I == 0 ? 1 : 0; };
  Tracer Tr;
  SpecConfig Cfg = SpecConfig()
                       .threads(2)
                       .degrade(/*MaxBadRate=*/0.5, /*Window=*/8)
                       .profile(&Store)
                       .profileSite("hopeless")
                       .trace(&Tr);

  auto R = Speculation::iterateChunked<uint64_t>(0, N, Chunk, Body, BadPredict,
                                                 Cfg);
  // Sequential oracle.
  uint64_t Want = 1;
  for (int64_t I = 0; I < N; ++I)
    Want = Want * 6364136223846793005ULL + 1442695040888963407ULL;
  EXPECT_EQ(R.Value, Want);
  // No candidate could clear the majority-hit-rate bar, so the run fell
  // back to sequential exactly as it would without profiling.
  EXPECT_EQ(R.Stats.PredictorSwitches, 0);
  EXPECT_GT(R.Stats.DegradedChunks, 0);
  EXPECT_GE(countEvents(Tr.snapshot(), SpecEventKind::Degrade), 1);
  EXPECT_GE(Store.site("hopeless").DegradeTrips, 1);
}

TEST(ProfileGuided, PlainIterateSeedsPredictorOnly) {
  ProfileStore Store;
  const int64_t N = 60;
  auto Body = [](int64_t, int64_t In) { return In; };
  auto BadPredict = [](int64_t I) -> int64_t { return I == 0 ? 3 : -1; };
  SpecConfig Cfg =
      SpecConfig().threads(2).profile(&Store).profileSite("plain");

  auto Cold = Speculation::iterate<int64_t>(0, N, Body, BadPredict, Cfg);
  EXPECT_EQ(Cold.Value, 3);
  // Plain iterate pins granularity: no chunk to converge or seed.
  EXPECT_EQ(Store.seedChunk("plain"), 0);
  EXPECT_EQ(Store.bestPredictor("plain"), "last");

  Tracer Tr;
  SpecConfig Warm = Cfg;
  Warm.trace(&Tr);
  auto Run2 = Speculation::iterate<int64_t>(0, N, Body, BadPredict, Warm);
  EXPECT_EQ(Run2.Value, 3);
  EXPECT_EQ(Run2.Stats.ProfileSeeds, 1);
  const std::vector<SpecEvent> Events = Tr.snapshot();
  const SpecEvent *Seed = findEvent(Events, SpecEventKind::ProfileSeed);
  ASSERT_NE(Seed, nullptr);
  EXPECT_EQ(Seed->Index, 0); // predictor-only seed
  EXPECT_EQ(Run2.Stats.Mispredictions, 0);
}

} // namespace
