//===- tests/lexgen_regex_test.cpp - Regex/NFA/DFA unit tests -------------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//

#include "lexgen/Dfa.h"
#include "lexgen/Nfa.h"
#include "lexgen/Regex.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace specpar;
using namespace specpar::lexgen;

namespace {

/// Compiles a single pattern into (NFA, DFA, minimized DFA).
struct Compiled {
  Nfa N;
  Dfa D;
  Dfa M;
};

Compiled compileOne(const std::string &Pattern) {
  Result<Nfa> N = buildCombinedNfa({Pattern});
  EXPECT_TRUE(bool(N)) << N.error();
  Compiled C{N.take(), Dfa(), Dfa()};
  C.D = Dfa::fromNfa(C.N);
  C.M = C.D.minimized();
  return C;
}

bool dfaMatches(const Dfa &D, std::string_view Text) {
  return D.matches(Text);
}

TEST(Regex, ParseErrors) {
  EXPECT_FALSE(bool(parseRegex("a(b")));
  EXPECT_FALSE(bool(parseRegex("*a")));
  EXPECT_FALSE(bool(parseRegex("[abc")));
  EXPECT_FALSE(bool(parseRegex("a\\")));
  EXPECT_FALSE(bool(parseRegex("[z-a]")));
  EXPECT_TRUE(bool(parseRegex("a|b*c+d?")));
  EXPECT_TRUE(bool(parseRegex("[^a-z0-9_]")));
  EXPECT_TRUE(bool(parseRegex("")));
}

TEST(Regex, LiteralMatching) {
  Compiled C = compileOne("abc");
  EXPECT_TRUE(dfaMatches(C.M, "abc"));
  EXPECT_FALSE(dfaMatches(C.M, "ab"));
  EXPECT_FALSE(dfaMatches(C.M, "abcd"));
  EXPECT_FALSE(dfaMatches(C.M, ""));
}

TEST(Regex, Alternation) {
  Compiled C = compileOne("foo|bar|baz");
  EXPECT_TRUE(dfaMatches(C.M, "foo"));
  EXPECT_TRUE(dfaMatches(C.M, "bar"));
  EXPECT_TRUE(dfaMatches(C.M, "baz"));
  EXPECT_FALSE(dfaMatches(C.M, "fo"));
  EXPECT_FALSE(dfaMatches(C.M, "barbaz"));
}

TEST(Regex, Quantifiers) {
  Compiled C = compileOne("a*b+c?");
  EXPECT_TRUE(dfaMatches(C.M, "b"));
  EXPECT_TRUE(dfaMatches(C.M, "aaabbc"));
  EXPECT_TRUE(dfaMatches(C.M, "bc"));
  EXPECT_FALSE(dfaMatches(C.M, "a"));
  EXPECT_FALSE(dfaMatches(C.M, "abcc"));
}

TEST(Regex, CharClasses) {
  Compiled C = compileOne("[a-fA-F0-9]+");
  EXPECT_TRUE(dfaMatches(C.M, "deadBEEF01"));
  EXPECT_FALSE(dfaMatches(C.M, "xyz"));
  Compiled Neg = compileOne("[^0-9]+");
  EXPECT_TRUE(dfaMatches(Neg.M, "hello!"));
  EXPECT_FALSE(dfaMatches(Neg.M, "a1b"));
}

TEST(Regex, EscapesAndDot) {
  Compiled C = compileOne("\\d+\\.\\d+");
  EXPECT_TRUE(dfaMatches(C.M, "3.14"));
  EXPECT_FALSE(dfaMatches(C.M, "314"));
  Compiled Dot = compileOne("a.c");
  EXPECT_TRUE(dfaMatches(Dot.M, "abc"));
  EXPECT_TRUE(dfaMatches(Dot.M, "a!c"));
  EXPECT_FALSE(dfaMatches(Dot.M, "a\nc")) << "'.' must not match newline";
}

TEST(Regex, ClassWithMetachars) {
  Compiled C = compileOne("[-+*/]");
  EXPECT_TRUE(dfaMatches(C.M, "-"));
  EXPECT_TRUE(dfaMatches(C.M, "*"));
  EXPECT_FALSE(dfaMatches(C.M, "a"));
}

TEST(Dfa, MinimizationShrinksAndPreservesStart) {
  // (a|b)*abb has a classic 4-state minimal DFA (plus nothing else).
  Compiled C = compileOne("(a|b)*abb");
  EXPECT_LE(C.M.numStates(), C.D.numStates());
  EXPECT_EQ(C.M.numStates(), 4u);
  EXPECT_TRUE(dfaMatches(C.M, "abb"));
  EXPECT_TRUE(dfaMatches(C.M, "aababb"));
  EXPECT_FALSE(dfaMatches(C.M, "ab"));
}

TEST(Dfa, RulePriorityKeywordVsIdentifier) {
  Result<Nfa> N = buildCombinedNfa({"if", "[a-z]+"});
  ASSERT_TRUE(bool(N)) << N.error();
  Dfa M = Dfa::fromNfa(*N).minimized();
  int32_t Rule = NoRule;
  EXPECT_TRUE(M.matches("if", &Rule));
  EXPECT_EQ(Rule, 0) << "keyword rule must win over identifier";
  EXPECT_TRUE(M.matches("iffy", &Rule));
  EXPECT_EQ(Rule, 1);
}

TEST(Dfa, DotRenderingIsWellFormed) {
  Result<Nfa> N = buildCombinedNfa({"if", "[a-z]+", "\\d+"});
  ASSERT_TRUE(bool(N)) << N.error();
  Dfa M = Dfa::fromNfa(*N).minimized();
  std::string Dot = M.toDot([](int32_t Rule) {
    const char *Names[] = {"kw_if", "ident", "num"};
    return std::string(Names[Rule]);
  });
  EXPECT_NE(Dot.find("digraph dfa"), std::string::npos);
  EXPECT_NE(Dot.find("doublecircle"), std::string::npos);
  EXPECT_NE(Dot.find("kw_if"), std::string::npos);
  EXPECT_NE(Dot.find("a-z"), std::string::npos);
  EXPECT_NE(Dot.find("start -> s"), std::string::npos);
  // Balanced braces and a closing line.
  EXPECT_EQ(Dot.back(), '\n');
  EXPECT_NE(Dot.find("}\n"), std::string::npos);
}

/// Property: NFA, DFA and minimized DFA agree on random strings over a
/// small alphabet, for a set of nontrivial patterns.
class RegexAgreement : public ::testing::TestWithParam<const char *> {};

TEST_P(RegexAgreement, NfaDfaMinAgreeOnRandomStrings) {
  Compiled C = compileOne(GetParam());
  Rng R(0xC0FFEE ^ std::hash<std::string>{}(GetParam()));
  const char Alphabet[] = {'a', 'b', 'c', '0', '1', '.', '*', '\n', ' '};
  for (int Trial = 0; Trial < 400; ++Trial) {
    size_t Len = R.nextBelow(12);
    std::string S;
    for (size_t I = 0; I < Len; ++I)
      S += Alphabet[R.nextBelow(sizeof(Alphabet))];
    bool NfaRes = C.N.matches(S);
    bool DfaRes = C.D.matches(S);
    bool MinRes = C.M.matches(S);
    EXPECT_EQ(NfaRes, DfaRes) << "pattern=" << GetParam() << " input=" << S;
    EXPECT_EQ(DfaRes, MinRes) << "pattern=" << GetParam() << " input=" << S;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, RegexAgreement,
    ::testing::Values("(a|b)*abb", "a*b*c*", "(ab|ba)+", "[ab]*c[ab]*",
                      "a?a?a?aaa", "(a|b)(a|b)(a|b)", "[^ab]+|a+", "\\d+",
                      "(0|1)*(00|11)", "a(b|c)*d?"));

} // namespace
