//===- tests/simsched_test.cpp - DES simulator tests ----------------------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//

#include "simsched/SimSched.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace specpar;
using namespace specpar::sim;

namespace {

std::vector<TaskSpec> uniformTasks(int64_t N, double Work, bool AllCorrect) {
  std::vector<TaskSpec> T(static_cast<size_t>(N));
  for (auto &S : T) {
    S.Work = Work;
    S.PredictionCorrect = AllCorrect;
  }
  return T;
}

TEST(SimSched, EmptyRun) {
  MachineParams P;
  SimResult R = simulateIteration({}, P);
  EXPECT_EQ(R.Makespan, 0.0);
  EXPECT_EQ(R.Speedup, 1.0);
}

TEST(SimSched, PerfectPredictionScalesLinearly) {
  MachineParams P;
  P.NumProcs = 4;
  SimResult R = simulateIteration(uniformTasks(16, 10.0, true), P);
  EXPECT_DOUBLE_EQ(R.SequentialTime, 160.0);
  // 16 equal tasks on 4 procs, no overheads: makespan = 4 waves of 10.
  EXPECT_DOUBLE_EQ(R.Makespan, 40.0);
  EXPECT_DOUBLE_EQ(R.Speedup, 4.0);
  EXPECT_EQ(R.Mispredictions, 0);
  EXPECT_EQ(R.ValidatorReexecutions, 0);
}

TEST(SimSched, OneProcessorGivesNoSpeedup) {
  MachineParams P;
  P.NumProcs = 1;
  P.SpawnOverhead = 0.1;
  SimResult R = simulateIteration(uniformTasks(8, 10.0, true), P);
  EXPECT_LE(R.Speedup, 1.0);
  EXPECT_GE(R.Speedup, 0.9) << "overheads are small";
}

TEST(SimSched, AllMispredictionsDegradeToSequentialSeqMode) {
  MachineParams P;
  P.NumProcs = 4;
  P.Mode = SimValidation::Seq;
  std::vector<TaskSpec> T = uniformTasks(8, 10.0, true);
  for (size_t I = 1; I < T.size(); ++I)
    T[I].PredictionCorrect = false;
  SimResult R = simulateIteration(T, P);
  // Every iteration after the first is re-executed serially by the
  // validator: makespan >= sequential time.
  EXPECT_GE(R.Makespan, R.SequentialTime - 10.0 - 1e-9);
  EXPECT_LE(R.Speedup, 1.15);
  EXPECT_EQ(R.Mispredictions, 7);
  EXPECT_EQ(R.ValidatorReexecutions, 7);
  // Wasted speculative work was executed as well.
  EXPECT_GT(R.TotalWork, R.SequentialTime);
}

TEST(SimSched, SpeedupMonotoneInProcessors) {
  std::vector<TaskSpec> T = uniformTasks(32, 5.0, true);
  double Prev = 0.0;
  for (unsigned Procs : {1u, 2u, 4u, 8u}) {
    MachineParams P;
    P.NumProcs = Procs;
    SimResult R = simulateIteration(T, P);
    EXPECT_GE(R.Speedup, Prev - 1e-9) << Procs << " procs";
    Prev = R.Speedup;
  }
  EXPECT_GT(Prev, 6.0) << "8 procs on 32 equal tasks should approach 8x";
}

TEST(SimSched, OverheadsReduceSpeedupBelowIdeal) {
  std::vector<TaskSpec> T = uniformTasks(16, 10.0, true);
  MachineParams Ideal;
  Ideal.NumProcs = 4;
  MachineParams Costly = Ideal;
  Costly.SpawnOverhead = 0.5;
  Costly.PredictorWork = 1.0;
  Costly.ValidationOverhead = 0.25;
  double SIdeal = simulateIteration(T, Ideal).Speedup;
  double SCostly = simulateIteration(T, Costly).Speedup;
  EXPECT_LT(SCostly, SIdeal);
  EXPECT_GT(SCostly, 1.0) << "moderate overheads should not erase the win";
}

TEST(SimSched, ParModeGarbageCascadesForceReexecutions) {
  // Under the quiescence discipline (a C++ memory-model necessity: the
  // accepted execution's writes must land last), Par mode's optimism has
  // a real price: a wrong-input initial attempt chains a *garbage*
  // corrective into the next slot, whose late finish forces a validator
  // re-execution there — and garbage correctives cascade ahead of the
  // validator. Two independent mispredictions on 8 processors: Seq
  // repairs them serially (makespan 30), while Par's useful correctives
  // (slots 2 and 6, finishing at t=20) are offset by garbage cascades
  // through slots 3-5 and 7.
  std::vector<TaskSpec> T = uniformTasks(8, 10.0, true);
  T[2].PredictionCorrect = false;
  T[6].PredictionCorrect = false;
  MachineParams Seq;
  Seq.NumProcs = 8;
  Seq.Mode = SimValidation::Seq;
  MachineParams Par = Seq;
  Par.Mode = SimValidation::Par;
  SimResult RSeq = simulateIteration(T, Seq);
  SimResult RPar = simulateIteration(T, Par);
  EXPECT_EQ(RSeq.ValidatorReexecutions, 2);
  EXPECT_DOUBLE_EQ(RSeq.Makespan, 30.0);
  EXPECT_GE(RPar.CorrectiveTasks, 2);
  EXPECT_GT(RPar.ValidatorReexecutions, 0)
      << "garbage correctives finish last and force re-execution";
  EXPECT_GE(RPar.Makespan, RSeq.Makespan)
      << "consistent with the paper: sequential validation tends to win";
}

TEST(SimSched, ParModeCorrectiveQueuesBehindPendingWorkCanLose) {
  // With all workers saturated by later initial tasks, the corrective
  // task waits for a processor while Seq's dedicated validator just
  // re-executes — Par validation is slower, the paper's counterintuitive
  // Figure 8 observation.
  std::vector<TaskSpec> T = uniformTasks(16, 10.0, true);
  T[8].PredictionCorrect = false;
  MachineParams Seq;
  Seq.NumProcs = 4;
  Seq.Mode = SimValidation::Seq;
  MachineParams Par = Seq;
  Par.Mode = SimValidation::Par;
  SimResult RSeq = simulateIteration(T, Seq);
  SimResult RPar = simulateIteration(T, Par);
  EXPECT_DOUBLE_EQ(RSeq.Makespan, 40.0) << "re-execution hides in the slack";
  EXPECT_GT(RPar.Makespan, RSeq.Makespan);
}

TEST(SimSched, ParModeValidationTaskOverheadCanOutweighBenefit) {
  // The paper's counterintuitive finding: with good predictors and more
  // threads, Seq validation can beat Par because of the cost of creating
  // validation/corrective tasks. Model: high spawn overhead, a cascade of
  // mispredictions (garbage correctives burn processors and spawn cost).
  std::vector<TaskSpec> T = uniformTasks(16, 10.0, true);
  for (size_t I = 4; I < 12; ++I)
    T[I].PredictionCorrect = false;
  MachineParams Seq;
  Seq.NumProcs = 4;
  Seq.SpawnOverhead = 2.0;
  Seq.Mode = SimValidation::Seq;
  MachineParams Par = Seq;
  Par.Mode = SimValidation::Par;
  SimResult RSeq = simulateIteration(T, Seq);
  SimResult RPar = simulateIteration(T, Par);
  // Par spawns extra corrective tasks; its total work must be higher.
  EXPECT_GT(RPar.CorrectiveTasks, 0);
  EXPECT_GE(RPar.TotalWork, RSeq.TotalWork);
}

TEST(SimSched, ValidatorChainLowerBoundsMakespan) {
  // Even with infinite processors and perfect prediction, validation
  // overhead serializes: makespan >= N * ValidationOverhead.
  MachineParams P;
  P.NumProcs = 1000;
  P.ValidationOverhead = 1.0;
  SimResult R = simulateIteration(uniformTasks(64, 1.0, true), P);
  EXPECT_GE(R.Makespan, 64.0);
}

/// Property sweep: simulator invariants on random workloads.
class SimFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimFuzz, Invariants) {
  Rng R(GetParam());
  for (int Trial = 0; Trial < 40; ++Trial) {
    int64_t N = 1 + static_cast<int64_t>(R.nextBelow(40));
    std::vector<TaskSpec> T(static_cast<size_t>(N));
    for (auto &S : T) {
      S.Work = 0.5 + R.nextDouble() * 20.0;
      S.PredictionCorrect = R.nextBool(0.7);
    }
    MachineParams P;
    P.NumProcs = 1 + static_cast<unsigned>(R.nextBelow(8));
    P.SpawnOverhead = R.nextDouble();
    P.PredictorWork = R.nextDouble();
    P.ValidationOverhead = R.nextDouble();
    P.Mode = R.nextBool(0.5) ? SimValidation::Seq : SimValidation::Par;
    SimResult S = simulateIteration(T, P);
    // Makespan is at least the critical path of the valid executions and
    // at most fully serialized work plus all overheads.
    EXPECT_GT(S.Makespan, 0.0);
    EXPECT_GE(S.TotalWork, S.SequentialTime - 1e-9);
    EXPECT_LE(S.Speedup, static_cast<double>(P.NumProcs) + 1.0 + 1e-9);
    double UpperBound = S.TotalWork +
                        static_cast<double>(N) *
                            (P.SpawnOverhead + P.PredictorWork +
                             P.ValidationOverhead) +
                        1e-6;
    EXPECT_LE(S.Makespan, UpperBound);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimFuzz, ::testing::Values(1, 7, 13, 29));

} // namespace
