//===- tests/lang_test.cpp - Speculate front-end tests --------------------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"
#include "lang/Parser.h"
#include "lang/Printer.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace specpar;
using namespace specpar::lang;

namespace {

std::unique_ptr<Program> parseOk(std::string_view Src) {
  auto R = parseExpr(Src);
  EXPECT_TRUE(bool(R)) << R.error() << "\nsource: " << Src;
  return R ? R.take() : nullptr;
}

std::string parseFail(std::string_view Src) {
  auto R = parseExpr(Src);
  EXPECT_FALSE(bool(R)) << "source: " << Src;
  return R ? std::string() : R.error();
}

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(LangLexer, TokenKinds) {
  std::string Err;
  auto T = tokenize("let x = 12 in x := !y; \\z. z <= 3 != 4 == 5", &Err);
  EXPECT_TRUE(Err.empty()) << Err;
  std::vector<TokKind> Kinds;
  for (const Tok &K : T)
    Kinds.push_back(K.Kind);
  std::vector<TokKind> Expected = {
      TokKind::KwLet, TokKind::Ident, TokKind::Equal,  TokKind::Int,
      TokKind::KwIn,  TokKind::Ident, TokKind::Assign, TokKind::Bang,
      TokKind::Ident, TokKind::Semi,  TokKind::Backslash, TokKind::Ident,
      TokKind::Dot,   TokKind::Ident, TokKind::Le,     TokKind::Int,
      TokKind::Ne,    TokKind::Int,   TokKind::EqEq,   TokKind::Int,
      TokKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LangLexer, CommentsAndLocations) {
  std::string Err;
  auto T = tokenize("1 // comment\n  x", &Err);
  ASSERT_EQ(T.size(), 3u);
  EXPECT_EQ(T[0].Loc.Line, 1);
  EXPECT_EQ(T[1].Kind, TokKind::Ident);
  EXPECT_EQ(T[1].Loc.Line, 2);
  EXPECT_EQ(T[1].Loc.Col, 3);
}

TEST(LangLexer, BadCharacterReportsError) {
  std::string Err;
  tokenize("a @ b", &Err);
  EXPECT_NE(Err.find("unexpected character"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Parser structure
//===----------------------------------------------------------------------===//

TEST(LangParser, Precedence) {
  auto P = parseOk("1 + 2 * 3");
  auto *B = dyn_cast<BinOp>(P->Main);
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(B->op(), BinOpKind::Add);
  EXPECT_EQ(cast<BinOp>(B->rhs())->op(), BinOpKind::Mul);
}

TEST(LangParser, CmpLowerThanAdd) {
  auto P = parseOk("1 + 2 < 3 * 4");
  auto *B = dyn_cast<BinOp>(P->Main);
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(B->op(), BinOpKind::Lt);
}

TEST(LangParser, SeqAssociatesLeft) {
  auto P = parseOk("1; 2; 3");
  auto *S = dyn_cast<Seq>(P->Main);
  ASSERT_NE(S, nullptr);
  EXPECT_TRUE(isa<Seq>(S->first()));
  EXPECT_TRUE(isa<IntLit>(S->second()));
}

TEST(LangParser, LambdaDesugarsToNest) {
  auto P = parseOk("\\x y. x + y");
  auto *L1 = dyn_cast<Lambda>(P->Main);
  ASSERT_NE(L1, nullptr);
  auto *L2 = dyn_cast<Lambda>(L1->body());
  ASSERT_NE(L2, nullptr);
  EXPECT_EQ(L1->param()->Name, "x");
  EXPECT_EQ(L2->param()->Name, "y");
}

TEST(LangParser, ArrayAssignBecomesArraySet) {
  auto P = parseOk("let a = newarr(10, 0) in a[3] := 7");
  auto *L = cast<Let>(P->Main);
  EXPECT_TRUE(isa<ArraySet>(L->body()));
}

TEST(LangParser, UnitAndDeref) {
  auto P = parseOk("let c = new(()) in !c");
  auto *L = cast<Let>(P->Main);
  EXPECT_TRUE(isa<NewCell>(L->init()));
  EXPECT_TRUE(isa<UnitLit>(cast<NewCell>(L->init())->init()));
  EXPECT_TRUE(isa<Deref>(L->body()));
}

TEST(LangParser, SpecConstructs) {
  auto P = parseOk("spec(1 + 2, 3, \\x. x)");
  EXPECT_TRUE(isa<Spec>(P->Main));
  auto Q = parseOk("specfold(\\i acc. acc + i, \\i. 0, 1, 10)");
  EXPECT_TRUE(isa<SpecFold>(Q->Main));
}

TEST(LangParser, ProgramWithFunctions) {
  auto R = parseProgram("fun inc(x) = x + 1\n"
                        "fun twice(f, v) = f(f(v))\n"
                        "main = twice(inc, 40)");
  ASSERT_TRUE(bool(R)) << R.error();
  auto &P = **R;
  ASSERT_EQ(P.Funs.size(), 2u);
  EXPECT_EQ(P.Funs[0]->Name, "inc");
  auto *C = dyn_cast<Call>(P.Main);
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->directCallee(), P.Funs[1]);
}

//===----------------------------------------------------------------------===//
// Parse errors
//===----------------------------------------------------------------------===//

TEST(LangParser, Errors) {
  parseFail("1 +");
  parseFail("(1");
  parseFail("let = 3 in 4");
  parseFail("if 1 then 2");
  parseFail("spec(1, 2)");
  parseFail("fold(1, 2, 3)");
  parseFail("\\. x");
  parseFail("a[1");
  parseFail("1 2");
}

TEST(LangParser, ErrorsCarryLocations) {
  auto R = parseExpr("1 +\n  *");
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().find("line 2"), std::string::npos) << R.error();
}

//===----------------------------------------------------------------------===//
// Resolver
//===----------------------------------------------------------------------===//

TEST(LangResolver, ResolvesInnermostBinding) {
  auto P = parseOk("let x = 1 in let x = 2 in x");
  auto *Outer = cast<Let>(P->Main);
  auto *Inner = cast<Let>(Outer->body());
  auto *V = cast<VarRef>(Inner->body());
  EXPECT_EQ(V->binding(), Inner->var());
}

TEST(LangResolver, UndefinedVariable) {
  auto R = parseExpr("x + 1");
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().find("undefined variable 'x'"), std::string::npos);
}

TEST(LangResolver, NoForwardOrRecursiveFunctionRefs) {
  auto Fwd = parseProgram("fun a(x) = b(x)\nfun b(x) = x\nmain = a(1)");
  EXPECT_FALSE(bool(Fwd));
  auto Rec = parseProgram("fun f(x) = f(x)\nmain = f(1)");
  EXPECT_FALSE(bool(Rec));
}

TEST(LangResolver, ArityMismatchOnDirectCall) {
  auto R = parseProgram("fun add(x, y) = x + y\nmain = add(1)");
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().find("expects 2 arguments"), std::string::npos);
}

TEST(LangResolver, DuplicateFunctionAndParam) {
  EXPECT_FALSE(bool(parseProgram("fun f(x) = x\nfun f(y) = y\nmain = 1")));
  EXPECT_FALSE(bool(parseProgram("fun f(x, x) = x\nmain = 1")));
}

TEST(LangResolver, FunctionUsedAsValue) {
  auto R = parseProgram("fun inc(x) = x + 1\nmain = fold(\\i a. inc(a), 0, "
                        "1, 3)");
  ASSERT_TRUE(bool(R)) << R.error();
}

//===----------------------------------------------------------------------===//
// Printer round-trips
//===----------------------------------------------------------------------===//

class PrinterRoundTrip : public ::testing::TestWithParam<const char *> {};

TEST_P(PrinterRoundTrip, PrintParsePrintIsStable) {
  auto R = parseProgram(GetParam());
  ASSERT_TRUE(bool(R)) << R.error();
  std::string Printed = printProgram(**R);
  auto R2 = parseProgram(Printed);
  ASSERT_TRUE(bool(R2)) << R2.error() << "\nprinted:\n" << Printed;
  EXPECT_EQ(printProgram(**R2), Printed);
  EXPECT_EQ(countNodes(**R2), countNodes(**R));
}

INSTANTIATE_TEST_SUITE_P(
    Programs, PrinterRoundTrip,
    ::testing::Values(
        "main = 1 + 2 * 3 - 4 % 5",
        "main = (1; 2); 3; 4",
        "main = let c = new(5) in c := !c + 1; !c",
        "main = if 1 < 2 then (if 0 then 1 else 2) else 3",
        "main = (\\x y. x + y)(3, 4)",
        "main = let a = newarr(8, 0) in a[0] := 1; a[a[0]] := 2; len(a)",
        "main = fold(\\i acc. acc + i, 0, 1, 10)",
        "main = spec(40 + 2, 42, \\v. new(v))",
        "main = specfold(\\i acc. acc * i, \\i. 1, 1, 5)",
        "fun sq(x) = x * x\nfun sumsq(n) = fold(\\i a. a + sq(i), 0, 1, n)\n"
        "main = sumsq(10)",
        "main = 0 - 5 + -3",
        "main = let f = \\x. x := 1 in f(new(0))"));

TEST(Printer, CountNodesCountsEverything) {
  auto P = parseOk("1 + 2");
  EXPECT_EQ(countNodes(P->Main), 3);
  auto Q = parseOk("let x = 1 in x");
  EXPECT_EQ(countNodes(Q->Main), 3);
}

//===----------------------------------------------------------------------===//
// Resolver frame layout (slots and lambda forms, consumed by sp_compile)
//===----------------------------------------------------------------------===//

TEST(LangResolver, LetSlotsAreMonotoneWithinMain) {
  auto R = parseProgram("main = let x = 1 in let y = 2 in x + y");
  ASSERT_TRUE(bool(R)) << R.error();
  const Program &P = **R;
  EXPECT_EQ(P.MainFrameSlots, 2u);
  const auto *Outer = cast<Let>(P.Main);
  EXPECT_EQ(Outer->var()->Slot, 0u);
  const auto *Inner = cast<Let>(Outer->body());
  EXPECT_EQ(Inner->var()->Slot, 1u);
}

TEST(LangResolver, SiblingScopesNeverShareASlot) {
  // Monotone allocation: even though y and z are never live together,
  // they get distinct slots — the compiled spec producer and predictor
  // share the enclosing frame across threads, so reuse would race.
  auto R = parseProgram(
      "main = let x = 1 in (let y = 2 in y) + (let z = 3 in z)");
  ASSERT_TRUE(bool(R)) << R.error();
  EXPECT_EQ((*R)->MainFrameSlots, 3u);
}

TEST(LangResolver, FoldLiteralLambdaIsInlined) {
  auto R = parseProgram("main = fold(\\i acc. acc + i, 0, 1, 3)");
  ASSERT_TRUE(bool(R)) << R.error();
  const Program &P = **R;
  const auto *F = cast<Fold>(P.Main);
  const auto *OuterL = cast<Lambda>(F->fn());
  EXPECT_EQ(OuterL->form(), LambdaForm::Inlined);
  // Both loop binders live in the enclosing (main) frame.
  EXPECT_EQ(P.MainFrameSlots, 2u);
  EXPECT_NE(OuterL->param()->Slot, Binding::NoSlot);
}

TEST(LangResolver, SpecfoldLiteralLambdaIsFused) {
  auto R = parseProgram("main = specfold(\\i acc. acc + i, \\i. 0, 1, 3)");
  ASSERT_TRUE(bool(R)) << R.error();
  const Program &P = **R;
  const auto *SF = cast<SpecFold>(P.Main);
  const auto *OuterL = cast<Lambda>(SF->fn());
  EXPECT_EQ(OuterL->form(), LambdaForm::FusedOuter);
  // One fused arity-2 frame holding both parameters; nothing spills
  // into main's frame.
  EXPECT_EQ(OuterL->frameSlots(), 2u);
  EXPECT_EQ(P.MainFrameSlots, 0u);
  const auto *GuessL = cast<Lambda>(SF->guess());
  EXPECT_EQ(GuessL->form(), LambdaForm::Closure);
  EXPECT_EQ(GuessL->frameSlots(), 1u);
}

TEST(LangResolver, ClosureOwnsItsFrame) {
  auto R = parseProgram("main = \\x. let y = x in y");
  ASSERT_TRUE(bool(R)) << R.error();
  const auto *L = cast<Lambda>((*R)->Main);
  EXPECT_EQ(L->form(), LambdaForm::Closure);
  EXPECT_EQ(L->frameSlots(), 2u);
  EXPECT_EQ(L->param()->Slot, 0u);
}

TEST(LangResolver, FunDefFrameCountsParamsAndLets) {
  auto R = parseProgram("fun f(a, b) = let c = a in c + b\nmain = f(1, 2)");
  ASSERT_TRUE(bool(R)) << R.error();
  const FunDef *F = (*R)->findFun("f");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->FrameSlots, 3u);
  ASSERT_EQ(F->Params.size(), 2u);
  EXPECT_EQ(F->Params[0]->Slot, 0u);
  EXPECT_EQ(F->Params[1]->Slot, 1u);
}

} // namespace
