//===- tests/serving_test.cpp - specd serving-layer tests -----------------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Tests for the speculation-as-a-service layer: admission placement,
/// per-tenant policy enforcement (deadlines), executor-shard isolation,
/// Prometheus exposition-format validity of the metrics endpoint (with a
/// real HTTP scrape), and shutdown resolving every future.
///
//===----------------------------------------------------------------------===//

#include "serving/HttpMetricsServer.h"
#include "serving/ServerContext.h"
#include "support/Json.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <future>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace specpar;
using namespace specpar::serving;

namespace {

/// A tiny server for tests: small catalog so construction stays fast.
ServerOptions testOptions(unsigned Shards,
                          AdmissionPolicy A = AdmissionPolicy::RoundRobin) {
  ServerOptions O;
  O.NumShards = Shards;
  O.ThreadsPerShard = 2;
  O.QueueCapacity = 64;
  O.Admission = A;
  O.WorkloadScale = 16384;
  return O;
}

TenantPolicy basicTenant(const std::string &Name) {
  TenantPolicy P;
  P.Name = Name;
  P.NumTasks = 4;
  return P;
}

//===----------------------------------------------------------------------===//
// Admission
//===----------------------------------------------------------------------===//

TEST(Admission, RoundRobinSpreadsJobsAcrossShards) {
  ServerContext Ctx(testOptions(2, AdmissionPolicy::RoundRobin));
  Ctx.registerTenant(basicTenant("t"));
  std::vector<std::future<JobResult>> Fs;
  for (int I = 0; I < 8; ++I)
    Fs.push_back(Ctx.submit("t", Job::lex()));
  std::set<unsigned> ShardsSeen;
  for (auto &F : Fs) {
    JobResult R = F.get();
    EXPECT_EQ(R.Outcome, JobOutcome::Ok) << R.Error;
    ShardsSeen.insert(R.Shard);
  }
  // Strict alternation: both shards executed jobs.
  EXPECT_EQ(ShardsSeen.size(), 2u);
  EXPECT_EQ(Ctx.shard(0).completedJobs() + Ctx.shard(1).completedJobs(), 8u);
}

TEST(Admission, UnknownTenantIsRejectedImmediately) {
  ServerContext Ctx(testOptions(1));
  JobResult R = Ctx.submit("nobody", Job::lex()).get();
  EXPECT_EQ(R.Outcome, JobOutcome::Rejected);
  EXPECT_EQ(R.Error, "unknown tenant");
}

TEST(Admission, FullQueueRejectsInsteadOfBlocking) {
  ServerOptions O = testOptions(1);
  O.QueueCapacity = 2;
  ServerContext Ctx(O);
  Ctx.registerTenant(basicTenant("t"));

  // Occupy the dispatch thread with a slow callable, then overfill the
  // (capacity-2) queue: at least one later submission must bounce.
  std::promise<void> Release;
  std::shared_future<void> Gate = Release.get_future().share();
  auto Slow = Ctx.submit("t", Job::callable([Gate](const rt::SpecConfig &) {
    Gate.wait();
    return int64_t(1);
  }));
  std::vector<std::future<JobResult>> Rest;
  for (int I = 0; I < 6; ++I)
    Rest.push_back(Ctx.submit("t", Job::lex()));
  Release.set_value();

  int Rejected = 0;
  for (auto &F : Rest)
    if (F.get().Outcome == JobOutcome::Rejected)
      ++Rejected;
  EXPECT_GE(Rejected, 1);
  EXPECT_EQ(Slow.get().Value, 1);
}

TEST(Admission, LeastLoadedAvoidsTheBusyShard) {
  ServerContext Ctx(testOptions(2, AdmissionPolicy::LeastLoaded));
  Ctx.registerTenant(basicTenant("t"));

  // Pin shard of first job by blocking it; subsequent jobs must land on
  // the other shard while the first is busy.
  std::promise<void> Release;
  std::shared_future<void> Gate = Release.get_future().share();
  auto Blocked = Ctx.submit("t", Job::callable([Gate](const rt::SpecConfig &) {
    Gate.wait();
    return int64_t(0);
  }));
  // Give the dispatch thread a moment to pick the blocker up so its
  // shard reports load.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // One at a time, completing each before the next: at every submit the
  // blocked shard has load 1 and the other is idle, so least-loaded must
  // always choose the idle one (no tie to fall back on).
  std::set<unsigned> ShardsSeen;
  for (int I = 0; I < 4; ++I)
    ShardsSeen.insert(Ctx.submit("t", Job::lex()).get().Shard);
  Release.set_value();
  unsigned BlockedShard = Blocked.get().Shard;

  EXPECT_EQ(ShardsSeen.size(), 1u);
  EXPECT_NE(*ShardsSeen.begin(), BlockedShard);
}

//===----------------------------------------------------------------------===//
// Per-tenant policy enforcement
//===----------------------------------------------------------------------===//

TEST(Policy, DeadlineTenantTimesOutSlowJobs) {
  ServerContext Ctx(testOptions(1));
  TenantPolicy P = basicTenant("impatient");
  P.Deadline = std::chrono::milliseconds(20);
  Ctx.registerTenant(P);

  JobResult R =
      Ctx.submit("impatient", Job::callable([](const rt::SpecConfig &Cfg) {
        // A run whose bodies poll cancellation but need ~1s of sleep:
        // must abort via the tenant's deadline long before that.
        auto Out = rt::Speculation::iterate<int64_t>(
            0, 8,
            [](int64_t I, int64_t A) {
              for (int S = 0; S < 20; ++S) {
                if (rt::currentTaskCancelled())
                  return int64_t(-1);
                std::this_thread::sleep_for(std::chrono::milliseconds(5));
              }
              return A + I;
            },
            [](int64_t I) { return I * (I - 1) / 2; }, Cfg);
        return Out.Value;
      })).get();
  EXPECT_EQ(R.Outcome, JobOutcome::TimedOut);

  // The same job under a tenant with no deadline completes.
  Ctx.registerTenant(basicTenant("patient"));
  JobResult R2 = Ctx.submit("patient", Job::lex()).get();
  EXPECT_EQ(R2.Outcome, JobOutcome::Ok) << R2.Error;
}

TEST(Policy, TracedTenantAccumulatesEvents) {
  ServerContext Ctx(testOptions(1));
  TenantPolicy P = basicTenant("traced");
  P.Trace = true;
  Ctx.registerTenant(P);
  EXPECT_EQ(Ctx.submit("traced", Job::decode()).get().Outcome, JobOutcome::Ok);
  TenantState *TS = Ctx.tenant("traced");
  ASSERT_NE(TS, nullptr);
  ASSERT_NE(TS->Trace, nullptr);
  EXPECT_FALSE(TS->Trace->snapshot().empty());
}

TEST(Policy, StatsAggregateAcrossJobs) {
  ServerContext Ctx(testOptions(1));
  Ctx.registerTenant(basicTenant("t"));
  for (int I = 0; I < 3; ++I)
    EXPECT_EQ(Ctx.submit("t", Job::mwis()).get().Outcome, JobOutcome::Ok);
  TenantState *TS = Ctx.tenant("t");
  ASSERT_NE(TS, nullptr);
  rt::stats::Snapshot Totals = TS->totals();
  EXPECT_GT(Totals.Spec.Tasks, 0);
  EXPECT_GT(Totals.Exec.Submits, 0u);
  auto Outcomes = TS->outcomes();
  EXPECT_EQ(Outcomes[static_cast<size_t>(JobOutcome::Ok)], 3u);
  EXPECT_EQ(TS->latency().count(), 3u);
}

TEST(Policy, SpecJobRunsTheCompiledProgramAgainstTheOracle) {
  ServerContext Ctx(testOptions(1));
  Ctx.registerTenant(basicTenant("t"));

  // The catalog compiled its Speculate program once at construction.
  ASSERT_NE(Ctx.catalog().SpecProgram, nullptr);
  EXPECT_FALSE(Ctx.catalog().SpecSource.empty());

  JobResult R = Ctx.submit("t", Job::spec()).get();
  ASSERT_EQ(R.Outcome, JobOutcome::Ok) << R.Error;
  EXPECT_EQ(R.Value, Ctx.catalog().SpecOracle);
  // The job really went through the native speculation runtime on the
  // shard's executor: speculative tasks ran, and the closed-form
  // predictor means every prediction validated.
  EXPECT_GT(R.Stats.Spec.Tasks, 0);
  EXPECT_GT(R.Stats.Spec.Predictions, 0);
  EXPECT_EQ(R.Stats.Spec.Mispredictions, 0);
  EXPECT_GT(R.Stats.Exec.Submits, 0u);

  // And it folds into the tenant aggregates like every other kind.
  TenantState *TS = Ctx.tenant("t");
  ASSERT_NE(TS, nullptr);
  EXPECT_GT(TS->totals().Spec.Predictions, 0);
  EXPECT_EQ(TS->outcomes()[static_cast<size_t>(JobOutcome::Ok)], 1u);
}

//===----------------------------------------------------------------------===//
// Executor-shard isolation
//===----------------------------------------------------------------------===//

TEST(Isolation, ShardsOwnDistinctExecutorsAndStatsDoNotBleed) {
  ServerContext Ctx(testOptions(2, AdmissionPolicy::RoundRobin));
  Ctx.registerTenant(basicTenant("t"));
  ASSERT_NE(Ctx.shard(0).executor().get(), Ctx.shard(1).executor().get());
  // Neither shard executor is the process default shard.
  EXPECT_NE(Ctx.shard(0).executor().get(),
            rt::SpecExecutor::defaultShard().get());

  rt::ExecutorStats Before0 = Ctx.shard(0).executorStats();
  rt::ExecutorStats Before1 = Ctx.shard(1).executorStats();

  // Round-robin: job 0 -> shard 0, job 1 -> shard 1, job 2 -> shard 0...
  // Run one job and check only its shard's executor moved.
  JobResult R = Ctx.submit("t", Job::lex()).get();
  ASSERT_EQ(R.Outcome, JobOutcome::Ok) << R.Error;
  Ctx.drain();

  rt::ExecutorStats D0 = Ctx.shard(0).executorStats() - Before0;
  rt::ExecutorStats D1 = Ctx.shard(1).executorStats() - Before1;
  rt::ExecutorStats &Ran = R.Shard == 0 ? D0 : D1;
  rt::ExecutorStats &Idle = R.Shard == 0 ? D1 : D0;
  EXPECT_GT(Ran.Submits, 0u);
  EXPECT_EQ(Idle.Submits, 0u);
  // The per-run snapshot attributed exactly the running shard's delta.
  EXPECT_EQ(R.Stats.Exec.Submits, Ran.Submits);
}

TEST(Isolation, FaultPlanOnForeignExecutorDoesNotReachShards) {
  // Arm a fault plan on an unrelated executor: jobs served by the
  // context must never observe it.
  ServerContext Ctx(testOptions(1));
  Ctx.registerTenant(basicTenant("t"));
  std::shared_ptr<rt::SpecExecutor> Foreign = rt::SpecExecutor::create(2);
  rt::FaultPlan Plan(99);
  Plan.arm(rt::FaultSite::BodyThrow, 1.0);
  Foreign->injectFaults(&Plan);
  EXPECT_EQ(Ctx.shard(0).executor()->injectedFaults(), nullptr);
  EXPECT_EQ(Ctx.submit("t", Job::lex()).get().Outcome, JobOutcome::Ok);
  Foreign->injectFaults(nullptr);
}

//===----------------------------------------------------------------------===//
// Prometheus exposition format
//===----------------------------------------------------------------------===//

/// A strict parser for the exposition text format: every non-empty line
/// is `# HELP`, `# TYPE`, or a sample `name{labels} value`; TYPE lines
/// name a valid type and appear at most once per family; every sample's
/// family has a preceding TYPE. Histogram series are checked
/// semantically: per label set, `le` bounds strictly increase, the
/// cumulative bucket values are monotone non-decreasing, the series ends
/// at `le="+Inf"`, and that bucket equals the `_count` sample exactly.
void verifyPrometheusText(const std::string &Text) {
  std::set<std::string> TypedFamilies;
  std::istringstream In(Text);
  std::string Line;
  int Samples = 0;
  struct BucketSeries {
    std::vector<std::pair<std::string, double>> Buckets; ///< (le, value)
  };
  std::map<std::string, BucketSeries> Series; ///< family|labels-sans-le
  std::map<std::string, double> Counts;       ///< family|labels
  auto FamilyOf = [](const std::string &Metric) {
    // _bucket/_sum/_count series belong to their histogram family.
    for (const char *Suffix : {"_bucket", "_sum", "_count"}) {
      size_t L = std::string(Suffix).size();
      if (Metric.size() > L &&
          Metric.compare(Metric.size() - L, L, Suffix) == 0)
        return Metric.substr(0, Metric.size() - L);
    }
    return Metric;
  };
  auto EndsWith = [](const std::string &S, const std::string &Suffix) {
    return S.size() >= Suffix.size() &&
           S.compare(S.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
  };
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    if (Line.rfind("# TYPE ", 0) == 0) {
      std::istringstream LS(Line.substr(7));
      std::string Name, Type;
      LS >> Name >> Type;
      EXPECT_TRUE(Type == "counter" || Type == "gauge" ||
                  Type == "histogram" || Type == "summary")
          << Line;
      EXPECT_TRUE(TypedFamilies.insert(Name).second)
          << "duplicate TYPE for " << Name;
      continue;
    }
    if (Line.rfind("# HELP ", 0) == 0 || Line[0] == '#')
      continue;
    // Sample line: metric name [{labels}] SP value.
    size_t NameEnd = Line.find_first_of("{ ");
    ASSERT_NE(NameEnd, std::string::npos) << Line;
    std::string Metric = Line.substr(0, NameEnd);
    for (char C : Metric)
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
                  C == ':')
          << Line;
    EXPECT_TRUE(TypedFamilies.count(FamilyOf(Metric)))
        << "sample before TYPE: " << Line;
    std::string LabelText;
    if (Line[NameEnd] == '{') {
      size_t Close = Line.find('}', NameEnd);
      ASSERT_NE(Close, std::string::npos) << Line;
      // Labels: k="v" pairs, comma-separated, quotes balanced.
      LabelText = Line.substr(NameEnd + 1, Close - NameEnd - 1);
      EXPECT_EQ(std::count(LabelText.begin(), LabelText.end(), '"') % 2, 0)
          << Line;
      NameEnd = Close + 1;
    }
    ASSERT_EQ(Line[NameEnd], ' ') << Line;
    std::string Value = Line.substr(NameEnd + 1);
    ASSERT_FALSE(Value.empty()) << Line;
    size_t Pos = 0;
    double V = std::stod(Value, &Pos); // throws on a malformed number
    EXPECT_EQ(Pos, Value.size()) << Line;
    if (EndsWith(Metric, "_bucket")) {
      // Peel the `le` label (the writer appends it last) so buckets of
      // one series share a key.
      size_t LeAt = LabelText.find("le=\"");
      ASSERT_NE(LeAt, std::string::npos) << Line;
      size_t LeEnd = LabelText.find('"', LeAt + 4);
      ASSERT_NE(LeEnd, std::string::npos) << Line;
      std::string Le = LabelText.substr(LeAt + 4, LeEnd - LeAt - 4);
      std::string Rest = LabelText.substr(0, LeAt);
      if (!Rest.empty() && Rest.back() == ',')
        Rest.pop_back();
      Series[FamilyOf(Metric) + "|" + Rest].Buckets.emplace_back(Le, V);
    } else if (EndsWith(Metric, "_count")) {
      Counts[FamilyOf(Metric) + "|" + LabelText] = V;
    }
    ++Samples;
  }
  EXPECT_GT(Samples, 0);
  // Histogram semantics, per series.
  for (const auto &KV : Series) {
    const auto &B = KV.second.Buckets;
    ASSERT_FALSE(B.empty()) << KV.first;
    EXPECT_EQ(B.back().first, "+Inf") << KV.first;
    double PrevBound = -1, PrevValue = -1;
    for (size_t I = 0; I < B.size(); ++I) {
      if (B[I].first != "+Inf") {
        size_t Pos = 0;
        double Bound = std::stod(B[I].first, &Pos);
        EXPECT_EQ(Pos, B[I].first.size()) << "unparsable le: " << B[I].first;
        EXPECT_GT(Bound, PrevBound) << "le bounds not increasing: " << KV.first;
        PrevBound = Bound;
      } else {
        EXPECT_EQ(I, B.size() - 1) << "+Inf not last: " << KV.first;
      }
      EXPECT_GE(B[I].second, PrevValue)
          << "cumulative buckets decreased: " << KV.first;
      PrevValue = B[I].second;
    }
    // The +Inf bucket IS the count, exactly.
    auto CountIt = Counts.find(KV.first);
    ASSERT_NE(CountIt, Counts.end()) << "no _count for " << KV.first;
    EXPECT_EQ(B.back().second, CountIt->second) << KV.first;
  }
}

TEST(Metrics, ExpositionTextParses) {
  ServerContext Ctx(testOptions(2));
  Ctx.registerTenant(basicTenant("alpha"));
  TenantPolicy Traced = basicTenant("beta");
  Traced.Trace = true;
  Ctx.registerTenant(Traced);
  std::vector<std::future<JobResult>> Fs;
  for (int I = 0; I < 4; ++I) {
    Fs.push_back(Ctx.submit("alpha", Job::lex()));
    Fs.push_back(Ctx.submit("beta", Job::decode()));
  }
  for (auto &F : Fs)
    EXPECT_EQ(F.get().Outcome, JobOutcome::Ok);
  Ctx.drain();

  std::string Text = Ctx.metricsText();
  verifyPrometheusText(Text);

  // Golden spot-checks on content, not just format.
  EXPECT_NE(Text.find("specd_shards 2"), std::string::npos);
  EXPECT_NE(
      Text.find("specd_jobs_total{tenant=\"alpha\",outcome=\"ok\"} 4"),
      std::string::npos);
  EXPECT_NE(Text.find("specd_trace_events_total{tenant=\"beta\""),
            std::string::npos);
  EXPECT_NE(Text.find("specd_request_latency_seconds_bucket{tenant=\"alpha\""
                      ",le=\"+Inf\"} 4"),
            std::string::npos);
  // Per-tenant executor attribution is present and positive.
  EXPECT_NE(Text.find("specd_tenant_executor_submits_total{tenant=\"alpha\"}"),
            std::string::npos);
}

TEST(Metrics, HttpEndpointServesMetricsAnd404s) {
  ServerContext Ctx(testOptions(1));
  Ctx.registerTenant(basicTenant("t"));
  EXPECT_EQ(Ctx.submit("t", Job::mwis()).get().Outcome, JobOutcome::Ok);
  HttpMetricsServer Http(Ctx, /*Port=*/0);
  ASSERT_GT(Http.port(), 0);

  std::string Resp = HttpMetricsServer::get(Http.port(), "/metrics");
  ASSERT_TRUE(Resp.rfind("HTTP/1.1 200", 0) == 0) << Resp.substr(0, 80);
  EXPECT_NE(Resp.find("text/plain; version=0.0.4"), std::string::npos);
  size_t BodyAt = Resp.find("\r\n\r\n");
  ASSERT_NE(BodyAt, std::string::npos);
  verifyPrometheusText(Resp.substr(BodyAt + 4));

  std::string Missing = HttpMetricsServer::get(Http.port(), "/nope");
  EXPECT_TRUE(Missing.rfind("HTTP/1.1 404", 0) == 0);
  Http.stop();
}

TEST(Metrics, LargeBodyScrapesIntactOverRealSocket) {
  // A fleet of tenants inflates /metrics far past the socket send
  // buffer: the server's writeAll must survive short writes, or the
  // scrape arrives truncated. (This is the regression test for the
  // send()-short-write bug.)
  ServerContext Ctx(testOptions(1));
  for (int I = 0; I < 150; ++I)
    Ctx.registerTenant(basicTenant(
        "tenant-with-a-deliberately-long-metric-label-" + std::to_string(I)));
  EXPECT_EQ(Ctx.submit("tenant-with-a-deliberately-long-metric-label-0",
                       Job::lex())
                .get()
                .Outcome,
            JobOutcome::Ok);
  ASSERT_GT(Ctx.metricsText().size(), 64u * 1024u);

  HttpMetricsServer Http(Ctx, /*Port=*/0);
  std::string Resp = HttpMetricsServer::get(Http.port(), "/metrics");
  ASSERT_TRUE(Resp.rfind("HTTP/1.1 200", 0) == 0) << Resp.substr(0, 80);
  size_t BodyAt = Resp.find("\r\n\r\n");
  ASSERT_NE(BodyAt, std::string::npos);
  std::string Body = Resp.substr(BodyAt + 4);
  EXPECT_GT(Body.size(), 64u * 1024u);

  // The declared Content-Length matches what actually arrived.
  size_t ClAt = Resp.find("Content-Length: ");
  ASSERT_NE(ClAt, std::string::npos);
  size_t ClEnd = Resp.find("\r\n", ClAt);
  EXPECT_EQ(std::stoull(Resp.substr(ClAt + 16, ClEnd - ClAt - 16)),
            Body.size());
  verifyPrometheusText(Body);
  Http.stop();
}

//===----------------------------------------------------------------------===//
// Profile-guided tenants
//===----------------------------------------------------------------------===//

TEST(Policy, ProfileGuidedTenantWarmsAcrossJobs) {
  ServerContext Ctx(testOptions(1));
  TenantPolicy P = basicTenant("warm");
  P.NumTasks = 16;
  P.ProfileGuided = true;
  P.AutotuneTargetMicros = 500;
  Ctx.registerTenant(P);

  // Job 1 is cold; jobs 2+ seed from what it recorded.
  for (int I = 0; I < 3; ++I)
    EXPECT_EQ(Ctx.submit("warm", Job::lex()).get().Outcome, JobOutcome::Ok);
  TenantState *TS = Ctx.tenant("warm");
  ASSERT_NE(TS, nullptr);
  ASSERT_NE(TS->Profile, nullptr);
  EXPECT_EQ(TS->Profile->site("warm/lex").Runs, 3);
  EXPECT_GT(TS->Profile->seedChunk("warm/lex"), 0);
  EXPECT_GE(TS->totals().Spec.ProfileSeeds, 1);

  // Sites are keyed per job kind: a decode job must not inherit lex's
  // converged chunk.
  EXPECT_EQ(Ctx.submit("warm", Job::decode()).get().Outcome, JobOutcome::Ok);
  EXPECT_EQ(TS->Profile->site("warm/decode").Runs, 1);
  EXPECT_EQ(TS->Profile->size(), 2u);

  // Both the seed counter and the coverage gauge are exported.
  std::string Text = Ctx.metricsText();
  verifyPrometheusText(Text);
  EXPECT_NE(Text.find("specd_spec_profile_seeds_total{tenant=\"warm\"}"),
            std::string::npos);
  EXPECT_NE(Text.find("specd_profile_sites{tenant=\"warm\"} 2"),
            std::string::npos);
}

TEST(Policy, ProfilePersistsAcrossServerRestarts) {
  const std::string Path = testing::TempDir() + "specd_profile_test_" +
                           std::to_string(::getpid()) + ".json";
  std::remove(Path.c_str());
  TenantPolicy P = basicTenant("durable");
  P.NumTasks = 16;
  P.ProfileGuided = true;
  P.AutotuneTargetMicros = 500;
  P.ProfilePath = Path;

  int64_t RecordedRuns = 0;
  {
    ServerContext Ctx(testOptions(1));
    Ctx.registerTenant(P);
    EXPECT_EQ(Ctx.submit("durable", Job::mwis()).get().Outcome, JobOutcome::Ok);
    RecordedRuns = Ctx.tenant("durable")->Profile->site("durable/mwis").Runs;
    EXPECT_GE(RecordedRuns, 1);
  } // ~TenantState saves the profile

  {
    ServerContext Ctx(testOptions(1));
    Ctx.registerTenant(P); // loads the saved profile
    TenantState *TS = Ctx.tenant("durable");
    ASSERT_NE(TS, nullptr);
    ASSERT_NE(TS->Profile, nullptr);
    EXPECT_EQ(TS->Profile->site("durable/mwis").Runs, RecordedRuns);
    // The very first job of the new process starts warm.
    EXPECT_EQ(Ctx.submit("durable", Job::mwis()).get().Outcome, JobOutcome::Ok);
    EXPECT_GE(TS->totals().Spec.ProfileSeeds, 1);
  }
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Resilience: retries, breakers, quarantine, crash containment
//===----------------------------------------------------------------------===//

TEST(Resilience, FailedJobRetriesWithBackoffUntilSuccess) {
  ServerContext Ctx(testOptions(1));
  TenantPolicy P = basicTenant("flaky");
  P.MaxRetries = 3;
  P.RetryBackoff = std::chrono::milliseconds(2);
  Ctx.registerTenant(P);

  auto Calls = std::make_shared<std::atomic<int>>(0);
  JobResult R =
      Ctx.submit("flaky", Job::callable([Calls](const rt::SpecConfig &) {
        if (Calls->fetch_add(1) < 2)
          throw std::runtime_error("transient");
        return int64_t(42);
      })).get();
  EXPECT_EQ(R.Outcome, JobOutcome::Ok) << R.Error;
  EXPECT_EQ(R.Value, 42);
  EXPECT_EQ(R.Attempts, 3);
  EXPECT_EQ(Calls->load(), 3);
  TenantState *TS = Ctx.tenant("flaky");
  ASSERT_NE(TS, nullptr);
  EXPECT_EQ(TS->Retries.load(), 2u);
  // Only the terminal outcome lands in the per-tenant job aggregates.
  EXPECT_EQ(TS->outcomes()[static_cast<size_t>(JobOutcome::Ok)], 1u);
  EXPECT_EQ(TS->outcomes()[static_cast<size_t>(JobOutcome::Faulted)], 0u);

  std::string Text = Ctx.metricsText();
  verifyPrometheusText(Text);
  EXPECT_NE(Text.find("specd_retries_total{tenant=\"flaky\"} 2"),
            std::string::npos);

  // A job that exhausts every retry resolves with its real last failure.
  JobResult Dead =
      Ctx.submit("flaky", Job::callable([](const rt::SpecConfig &) -> int64_t {
        throw std::runtime_error("permanent");
      })).get();
  EXPECT_EQ(Dead.Outcome, JobOutcome::Faulted);
  EXPECT_EQ(Dead.Attempts, 1 + P.MaxRetries);
  EXPECT_EQ(Dead.Error, "permanent");
}

TEST(Resilience, RetryRunsUnderRemainingDeadlineNotAFreshOne) {
  // The deadline × degrade × retry interaction: the first attempt times
  // out, the retry must run under what is LEFT of the job's budget —
  // queueing, the failed attempt, and the backoff all consumed it — not
  // a fresh full deadline.
  ServerContext Ctx(testOptions(1));
  TenantPolicy P = basicTenant("budgeted");
  P.Deadline = std::chrono::milliseconds(300);
  P.DegradeMaxBadRate = 0.5; // degrade armed alongside the deadline
  P.MaxRetries = 2;
  P.RetryBackoff = std::chrono::milliseconds(5);
  Ctx.registerTenant(P);

  auto SeenDeadlines =
      std::make_shared<std::vector<std::chrono::nanoseconds>>();
  auto Mx = std::make_shared<std::mutex>();
  JobResult R = Ctx.submit(
      "budgeted", Job::callable([SeenDeadlines, Mx](const rt::SpecConfig &Cfg) {
        {
          std::lock_guard<std::mutex> Lock(*Mx);
          SeenDeadlines->push_back(Cfg.deadline());
        }
        if (SeenDeadlines->size() == 1) {
          // First attempt: burn 60 ms of budget, then time out.
          std::this_thread::sleep_for(std::chrono::milliseconds(60));
          throw rt::SpecTimeoutError(Cfg.deadline());
        }
        return int64_t(7);
      })).get();

  ASSERT_EQ(R.Outcome, JobOutcome::Ok) << R.Error;
  EXPECT_EQ(R.Attempts, 2);
  ASSERT_EQ(SeenDeadlines->size(), 2u);
  const auto First = (*SeenDeadlines)[0];
  const auto Second = (*SeenDeadlines)[1];
  // First attempt: essentially the whole budget (only queueing shaved).
  EXPECT_GT(First, std::chrono::milliseconds(200));
  EXPECT_LE(First, std::chrono::milliseconds(300));
  // Retry: the 60 ms sleep and the 5 ms backoff are gone from it.
  EXPECT_LT(Second, First - std::chrono::milliseconds(50));
  EXPECT_GT(Second, std::chrono::nanoseconds::zero());

  // A budget that can't fit another attempt stops retrying: terminal
  // TimedOut, not MaxRetries timeouts back to back.
  TenantPolicy Tight = basicTenant("tight");
  Tight.Deadline = std::chrono::milliseconds(50);
  Tight.MaxRetries = 5;
  Tight.RetryBackoff = std::chrono::milliseconds(30);
  Ctx.registerTenant(Tight);
  JobResult T =
      Ctx.submit("tight", Job::callable([](const rt::SpecConfig &Cfg) -> int64_t {
        std::this_thread::sleep_for(std::chrono::milliseconds(40));
        throw rt::SpecTimeoutError(Cfg.deadline());
      })).get();
  EXPECT_EQ(T.Outcome, JobOutcome::TimedOut);
  EXPECT_LE(T.Attempts, 2);
}

TEST(Resilience, BreakerOpensShedsAndHalfOpenRecloses) {
  ServerContext Ctx(testOptions(1));
  TenantPolicy P = basicTenant("breaker");
  P.BreakerThreshold = 2;
  P.BreakerResetAfter = std::chrono::milliseconds(100);
  Ctx.registerTenant(P);

  auto Fail = [] {
    return Job::callable([](const rt::SpecConfig &) -> int64_t {
      throw std::runtime_error("boom");
    });
  };
  // Two consecutive failures trip the (threshold-2) breaker.
  EXPECT_EQ(Ctx.submit("breaker", Fail()).get().Outcome, JobOutcome::Faulted);
  EXPECT_EQ(Ctx.submit("breaker", Fail()).get().Outcome, JobOutcome::Faulted);

  // Open: the only shard is shed, so submission is rejected outright.
  JobResult Shed = Ctx.submit("breaker", Job::lex()).get();
  EXPECT_EQ(Shed.Outcome, JobOutcome::Rejected);
  EXPECT_NE(Shed.Error.find("circuit"), std::string::npos) << Shed.Error;

  std::string Text = Ctx.metricsText();
  verifyPrometheusText(Text);
  EXPECT_NE(
      Text.find("specd_breaker_state{tenant=\"breaker\",shard=\"0\"} 1"),
      std::string::npos);
  EXPECT_NE(
      Text.find("specd_breaker_trips_total{tenant=\"breaker\",shard=\"0\"} 1"),
      std::string::npos);

  // After the reset window the breaker half-opens; a succeeding probe
  // closes it and traffic flows again.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_EQ(Ctx.submit("breaker", Job::lex()).get().Outcome, JobOutcome::Ok);
  EXPECT_EQ(Ctx.submit("breaker", Job::lex()).get().Outcome, JobOutcome::Ok);
  EXPECT_NE(Ctx.metricsText().find(
                "specd_breaker_state{tenant=\"breaker\",shard=\"0\"} 0"),
            std::string::npos);

  // Other tenants never shared the pain: breakers are per tenant.
  Ctx.registerTenant(basicTenant("bystander"));
  EXPECT_EQ(Ctx.submit("bystander", Job::lex()).get().Outcome, JobOutcome::Ok);
}

TEST(Resilience, QueueExpiredDeadlineDoesNotTripBreaker) {
  // A job whose total deadline runs out while it sits in the queue never
  // executed on the shard — the resulting TimedOut says nothing about
  // shard health and must not feed the circuit breaker, else a
  // tight-deadline tenant under queueing pressure sheds perfectly
  // healthy shards.
  ServerContext Ctx(testOptions(1));
  Ctx.registerTenant(basicTenant("blocker"));
  TenantPolicy P = basicTenant("tightq");
  P.Deadline = std::chrono::milliseconds(20);
  P.BreakerThreshold = 1;                        // any counted failure trips
  P.BreakerResetAfter = std::chrono::minutes(1); // and stays open
  Ctx.registerTenant(P);

  // Hold the only dispatcher long enough for the tight deadline to
  // expire in the queue behind this job.
  auto Running = std::make_shared<std::promise<void>>();
  std::future<void> Started = Running->get_future();
  auto Blocker =
      Ctx.submit("blocker", Job::callable([Running](const rt::SpecConfig &) {
        Running->set_value();
        std::this_thread::sleep_for(std::chrono::milliseconds(80));
        return int64_t(1);
      }));
  Started.wait();

  JobResult Expired = Ctx.submit("tightq", Job::mwis()).get();
  EXPECT_EQ(Expired.Outcome, JobOutcome::TimedOut);
  EXPECT_FALSE(Expired.Executed);
  EXPECT_EQ(Expired.Attempts, 0); // no attempt body ever ran
  EXPECT_EQ(Blocker.get().Outcome, JobOutcome::Ok);

  // The shard never misbehaved, so the tenant must still be admitted.
  JobResult After =
      Ctx.submit("tightq", Job::callable([](const rt::SpecConfig &) {
        return int64_t(5);
      })).get();
  EXPECT_EQ(After.Outcome, JobOutcome::Ok) << After.Error;
  EXPECT_EQ(After.Value, 5);
  std::string Text = Ctx.metricsText();
  verifyPrometheusText(Text);
  EXPECT_NE(Text.find("specd_breaker_state{tenant=\"tightq\",shard=\"0\"} 0"),
            std::string::npos);
}

TEST(Resilience, StuckShardIsQuarantinedAndBacklogRedispatched) {
  ServerOptions O = testOptions(2, AdmissionPolicy::RoundRobin);
  O.StuckAfter = std::chrono::milliseconds(50);
  O.HealthPeriod = std::chrono::milliseconds(10);
  ServerContext Ctx(O);
  Ctx.registerTenant(basicTenant("t"));

  // Wedge one dispatcher inside a job that never finishes on its own.
  std::promise<void> Release;
  std::shared_future<void> Gate = Release.get_future().share();
  auto Blocked = Ctx.submit("t", Job::callable([Gate](const rt::SpecConfig &) {
    Gate.wait();
    return int64_t(1);
  }));
  // Wait until a dispatcher actually picked the blocker up.
  unsigned Stuck = Ctx.numShards();
  for (int Spin = 0; Spin < 200 && Stuck == Ctx.numShards(); ++Spin) {
    for (unsigned I = 0; I < Ctx.numShards(); ++I)
      if (Ctx.shard(I).busySinceNs() != 0)
        Stuck = I;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_LT(Stuck, Ctx.numShards());

  // Round-robin admission queues half of these behind the stuck job.
  std::vector<std::future<JobResult>> Fs;
  for (int I = 0; I < 8; ++I)
    Fs.push_back(Ctx.submit("t", Job::lex()));

  // Every queued job completes on the healthy shard — the watchdog
  // quarantined the stuck one and re-dispatched its backlog — while the
  // blocker is still wedged.
  for (auto &F : Fs) {
    JobResult R = F.get();
    EXPECT_EQ(R.Outcome, JobOutcome::Ok) << R.Error;
    EXPECT_NE(R.Shard, Stuck);
  }
  EXPECT_GE(Ctx.shardQuarantines(Stuck), 1u);
  EXPECT_EQ(Ctx.health(), ServerHealth::Degraded);
  std::string Text = Ctx.metricsText();
  verifyPrometheusText(Text);
  EXPECT_NE(Text.find("specd_shard_quarantines_total{shard=\"" +
                      std::to_string(Stuck) + "\"} 1"),
            std::string::npos);
  EXPECT_NE(Text.find("specd_shard_healthy{shard=\"" +
                      std::to_string(Stuck) + "\"} 0"),
            std::string::npos);

  // Unwedge: the blocked job still completes (nothing was lost), and
  // the shard is reinstated once its dispatcher makes progress.
  Release.set_value();
  EXPECT_EQ(Blocked.get().Outcome, JobOutcome::Ok);
  for (int Spin = 0; Spin < 500 && Ctx.health() != ServerHealth::Ok; ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(Ctx.health(), ServerHealth::Ok);
}

TEST(Resilience, InjectedFaultErrorCarriesSiteAndProbe) {
  rt::FaultPlan Plan(7); // outlives the context below
  Plan.arm(rt::FaultSite::BodyThrow, 1.0);
  ServerContext Ctx(testOptions(1));
  TenantPolicy P = basicTenant("chaos");
  P.Faults = &Plan;
  Ctx.registerTenant(P);

  JobResult R = Ctx.submit("chaos", Job::lex()).get();
  EXPECT_EQ(R.Outcome, JobOutcome::Faulted);
  EXPECT_EQ(R.FaultSiteName, "body-throw");
  EXPECT_GE(R.FaultProbe, 1u);
  // The human-readable error alone reproduces the failure.
  EXPECT_NE(R.Error.find("body-throw"), std::string::npos) << R.Error;
  EXPECT_NE(R.Error.find("probe"), std::string::npos) << R.Error;
}

TEST(Resilience, ShieldContainsCrashingTenantJobs) {
  rt::FaultPlan Plan(11);
  Plan.arm(rt::FaultSite::CrashInBody, 0.5);
  ServerContext Ctx(testOptions(1));
  TenantPolicy P = basicTenant("crashy"); // Shield defaults on
  P.Faults = &Plan;
  Ctx.registerTenant(P);

  // Crashing speculative attempts are contained and re-executed; the
  // job still produces the oracle-checked answer and the process (and
  // every other tenant) survives.
  JobResult R = Ctx.submit("crashy", Job::lex()).get();
  EXPECT_EQ(R.Outcome, JobOutcome::Ok) << R.Error;
  EXPECT_GT(R.Stats.Spec.ContainedCrashes, 0);

  std::string Text = Ctx.metricsText();
  verifyPrometheusText(Text);
  EXPECT_NE(Text.find("specd_spec_contained_crashes_total{tenant=\"crashy\"}"),
            std::string::npos);
  EXPECT_EQ(Text.find("specd_spec_contained_crashes_total{tenant=\"crashy\"} 0"),
            std::string::npos);
}

TEST(Health, HealthzReportsOkDegradedAndDraining) {
  ServerContext Ctx(testOptions(2));
  Ctx.registerTenant(basicTenant("t"));
  HttpMetricsServer Http(Ctx, /*Port=*/0);

  std::string Resp = HttpMetricsServer::get(Http.port(), "/healthz");
  EXPECT_TRUE(Resp.rfind("HTTP/1.1 200", 0) == 0) << Resp.substr(0, 80);
  EXPECT_NE(Resp.find("ok\n"), std::string::npos);

  // A quarantined shard degrades the server: 503 so load balancers
  // route away, body says why.
  Ctx.shard(1).setQuarantined(true);
  Resp = HttpMetricsServer::get(Http.port(), "/healthz");
  EXPECT_TRUE(Resp.rfind("HTTP/1.1 503", 0) == 0) << Resp.substr(0, 80);
  EXPECT_NE(Resp.find("degraded\n"), std::string::npos);
  Ctx.shard(1).setQuarantined(false);

  Ctx.shutdown();
  Resp = HttpMetricsServer::get(Http.port(), "/healthz");
  EXPECT_TRUE(Resp.rfind("HTTP/1.1 200", 0) == 0) << Resp.substr(0, 80);
  EXPECT_NE(Resp.find("draining\n"), std::string::npos);
  Http.stop();
}

//===----------------------------------------------------------------------===//
// Causal tracing & live introspection
//===----------------------------------------------------------------------===//

TEST(Tracing, JobResultCarriesTheMintedTraceId) {
  ServerContext Ctx(testOptions(1));
  Ctx.registerTenant(basicTenant("t"));
  JobResult A = Ctx.submit("t", Job::lex()).get();
  JobResult B = Ctx.submit("t", Job::mwis()).get();
  EXPECT_NE(A.TraceId, 0u);
  EXPECT_NE(B.TraceId, 0u);
  EXPECT_NE(A.TraceId, B.TraceId);
  // Even a rejected-at-admission job gets an id (it was admitted far
  // enough to mint one); only unknown tenants get none.
  EXPECT_EQ(Ctx.submit("nobody", Job::lex()).get().TraceId, 0u);
}

TEST(Tracing, RetriedJobSpansTwoShardsUnderOneTraceId) {
  // Attempt 1 fails on its shard and opens that shard's breaker
  // (threshold 1), so the retry must hop to the other shard. The trace
  // tree then has two spans — one per execution attempt — on two
  // different shards, all under the one TraceId the JobResult reports.
  ServerContext Ctx(testOptions(2));
  TenantPolicy P = basicTenant("hop");
  P.MaxRetries = 2;
  P.RetryBackoff = std::chrono::milliseconds(2);
  P.BreakerThreshold = 1;
  P.BreakerResetAfter = std::chrono::seconds(30);
  Ctx.registerTenant(P);

  auto Calls = std::make_shared<std::atomic<int>>(0);
  JobResult R =
      Ctx.submit("hop", Job::callable([Calls](const rt::SpecConfig &Cfg) {
        // Run a real speculative loop so runtime events (not just the
        // job markers) carry the trace context.
        auto Run = rt::Speculation::iterate<int64_t>(
            0, 32, [](int64_t I, int64_t A) { return A + I; },
            [](int64_t I) { return I * (I - 1) / 2; }, Cfg);
        if (Calls->fetch_add(1) == 0)
          throw std::runtime_error("transient");
        return Run.Value;
      })).get();
  ASSERT_EQ(R.Outcome, JobOutcome::Ok) << R.Error;
  EXPECT_EQ(R.Attempts, 2);
  ASSERT_NE(R.TraceId, 0u);

  std::string J;
  ASSERT_TRUE(Ctx.traceJson(R.TraceId, J));
  std::string Err;
  EXPECT_TRUE(validateJson(J, &Err)) << Err << "\n" << J;
  EXPECT_NE(J.find("\"trace_id\":" + std::to_string(R.TraceId)),
            std::string::npos);
  // One span per attempt...
  EXPECT_NE(J.find("\"span\":1"), std::string::npos) << J;
  EXPECT_NE(J.find("\"span\":2"), std::string::npos) << J;
  // ...retained by two different shards' recorders.
  EXPECT_NE(J.find("\"shard\":0"), std::string::npos) << J;
  EXPECT_NE(J.find("\"shard\":1"), std::string::npos) << J;

  // The same tree over the wire.
  HttpMetricsServer Http(Ctx, /*Port=*/0);
  std::string Resp = HttpMetricsServer::get(
      Http.port(), "/debug/trace?id=" + std::to_string(R.TraceId));
  ASSERT_TRUE(Resp.rfind("HTTP/1.1 200", 0) == 0) << Resp.substr(0, 80);
  EXPECT_NE(Resp.find("application/json"), std::string::npos);
  EXPECT_NE(Resp.find("\"trace_id\":" + std::to_string(R.TraceId)),
            std::string::npos);
  Http.stop();
}

TEST(Tracing, DebugTraceAnswers404ForUnknownAnd400ForBadIds) {
  ServerContext Ctx(testOptions(1));
  Ctx.registerTenant(basicTenant("t"));
  HttpMetricsServer Http(Ctx, /*Port=*/0);
  // Never-minted id: 404, not an empty 200 — an operator must be able
  // to tell "evicted/unknown" from "job with no events".
  EXPECT_TRUE(HttpMetricsServer::get(Http.port(), "/debug/trace?id=987654321")
                  .rfind("HTTP/1.1 404", 0) == 0);
  // Missing or malformed id: 400.
  EXPECT_TRUE(HttpMetricsServer::get(Http.port(), "/debug/trace")
                  .rfind("HTTP/1.1 400", 0) == 0);
  EXPECT_TRUE(HttpMetricsServer::get(Http.port(), "/debug/trace?id=abc")
                  .rfind("HTTP/1.1 400", 0) == 0);
  EXPECT_TRUE(HttpMetricsServer::get(Http.port(), "/debug/trace?id=12junk")
                  .rfind("HTTP/1.1 400", 0) == 0);
  Http.stop();
}

TEST(Tracing, StatuszParsesAndReconcilesWithMetrics) {
  ServerContext Ctx(testOptions(2));
  Ctx.registerTenant(basicTenant("alpha"));
  TenantPolicy Traced = basicTenant("beta");
  Traced.Trace = true;
  Ctx.registerTenant(Traced);
  std::vector<std::future<JobResult>> Fs;
  for (int I = 0; I < 4; ++I) {
    Fs.push_back(Ctx.submit("alpha", Job::lex()));
    Fs.push_back(Ctx.submit("beta", Job::decode()));
  }
  for (auto &F : Fs)
    EXPECT_EQ(F.get().Outcome, JobOutcome::Ok);
  Ctx.drain();

  HttpMetricsServer Http(Ctx, /*Port=*/0);
  std::string Resp = HttpMetricsServer::get(Http.port(), "/statusz");
  ASSERT_TRUE(Resp.rfind("HTTP/1.1 200", 0) == 0) << Resp.substr(0, 80);
  EXPECT_NE(Resp.find("application/json"), std::string::npos);
  size_t BodyAt = Resp.find("\r\n\r\n");
  ASSERT_NE(BodyAt, std::string::npos);
  const std::string Body = Resp.substr(BodyAt + 4);
  std::string Err;
  ASSERT_TRUE(validateJson(Body, &Err)) << Err << "\n" << Body;

  // Structure: both shards, both tenants, no in-flight job after drain.
  EXPECT_NE(Body.find("\"health\":\"ok\""), std::string::npos);
  EXPECT_NE(Body.find("\"index\":0"), std::string::npos);
  EXPECT_NE(Body.find("\"index\":1"), std::string::npos);
  EXPECT_NE(Body.find("\"name\":\"alpha\""), std::string::npos);
  EXPECT_NE(Body.find("\"name\":\"beta\""), std::string::npos);
  EXPECT_NE(Body.find("\"in_flight\":[]"), std::string::npos) << Body;

  // Reconciliation: the outcome tallies /statusz reports must match
  // what /metrics exposes for the same tenants.
  const std::string Metrics = Ctx.metricsText();
  EXPECT_NE(Metrics.find(
                "specd_jobs_total{tenant=\"alpha\",outcome=\"ok\"} 4"),
            std::string::npos);
  EXPECT_NE(Body.find("\"ok\":4"), std::string::npos) << Body;
  // And the flight drop counter family exists (zero on this tiny run).
  EXPECT_NE(Metrics.find("specd_trace_dropped_events_total"),
            std::string::npos);
  Http.stop();
}

TEST(Tracing, FlightWindowEvictionTurnsTraceInto404) {
  // A trace is servable only while the recorders retain its events; a
  // tiny retention window ages it out and the endpoint 404s.
  ServerOptions O = testOptions(1);
  O.FlightRetain = std::chrono::milliseconds(40);
  ServerContext Ctx(O);
  Ctx.registerTenant(basicTenant("t"));
  JobResult R = Ctx.submit("t", Job::lex()).get();
  ASSERT_EQ(R.Outcome, JobOutcome::Ok) << R.Error;
  std::string J;
  EXPECT_TRUE(Ctx.traceJson(R.TraceId, J));
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_FALSE(Ctx.traceJson(R.TraceId, J));
}

//===----------------------------------------------------------------------===//
// Shutdown
//===----------------------------------------------------------------------===//

TEST(Shutdown, EveryFutureResolves) {
  std::vector<std::future<JobResult>> Fs;
  {
    ServerContext Ctx(testOptions(2));
    Ctx.registerTenant(basicTenant("t"));
    for (int I = 0; I < 12; ++I)
      Fs.push_back(Ctx.submit("t", Job::lex()));
    Ctx.shutdown();
    // Post-shutdown submissions reject rather than hang.
    JobResult Late = Ctx.submit("t", Job::lex()).get();
    EXPECT_EQ(Late.Outcome, JobOutcome::Rejected);
  } // destructor: second shutdown is a no-op
  for (auto &F : Fs) {
    ASSERT_EQ(F.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    JobResult R = F.get();
    // Graceful shutdown drains first: everything admitted completes.
    EXPECT_EQ(R.Outcome, JobOutcome::Ok) << R.Error;
  }
}

} // namespace
