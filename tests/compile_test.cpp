//===- tests/compile_test.cpp - sp_compile lowering and execution ---------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Unit tests for the native-runtime compiler (src/compile/): expression
/// semantics must match the reference evaluator exactly (values, error
/// messages, error locations), closure conversion and partial
/// application must behave, the admission gate must refuse what the
/// rollback checker refuses with a structured reason, and the
/// `runSpeculate` facade must pick the right engine and report why.
///
//===----------------------------------------------------------------------===//

#include "compile/Compiler.h"
#include "compile/RunSpeculate.h"
#include "interp/NonSpecEval.h"
#include "interp/SpecMachine.h"
#include "lang/Parser.h"
#include "runtime/Speculation.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

using namespace specpar;
using compile::CompiledProgram;

namespace {

std::unique_ptr<lang::Program> parse(const std::string &Src) {
  auto R = lang::parseProgram(Src);
  EXPECT_TRUE(bool(R)) << Src << "\n" << (R ? "" : R.error());
  return R ? R.take() : nullptr;
}

std::shared_ptr<CompiledProgram> compileOk(const lang::Program &P) {
  compile::AdmissionReport Rep;
  auto C = compile::compileProgram(P, compile::CompileOptions(), &Rep);
  EXPECT_TRUE(bool(C)) << (C ? "" : C.error()) << "\n" << Rep.str();
  return C ? C.take() : nullptr;
}

CompiledProgram::Outcome runCompiled(const lang::Program &P,
                                     CompiledProgram::RunOptions Opts = {}) {
  auto C = compileOk(P);
  EXPECT_NE(C, nullptr);
  return C->run(Opts);
}

/// Compiled and non-speculative reference runs of the same source must
/// agree on status, value, error message, and error location.
void expectMatchesReference(const std::string &Src) {
  auto P = parse(Src);
  ASSERT_NE(P, nullptr);
  interp::RunOutcome N = interp::runNonSpeculative(*P);
  CompiledProgram::Outcome C = runCompiled(*P);
  ASSERT_EQ(C.Run.St, N.St) << Src << "\ncompiled: " << C.Run.statusStr()
                            << "\nreference: " << N.statusStr();
  if (N.St == interp::RunOutcome::Status::Done) {
    ASSERT_TRUE(C.ResultLowered) << Src;
    EXPECT_EQ(C.Run.Result.isInt(), N.Result.isInt()) << Src;
    if (N.Result.isInt()) {
      EXPECT_EQ(C.Run.Result.asInt(), N.Result.asInt()) << Src;
    }
  } else if (N.St == interp::RunOutcome::Status::Error) {
    EXPECT_EQ(C.Run.Error.Message, N.Error.Message) << Src;
    EXPECT_EQ(C.Run.Error.Loc.Line, N.Error.Loc.Line) << Src;
    EXPECT_EQ(C.Run.Error.Loc.Col, N.Error.Loc.Col) << Src;
  }
}

int64_t runInt(const std::string &Src) {
  auto P = parse(Src);
  EXPECT_NE(P, nullptr);
  if (!P)
    return 0;
  CompiledProgram::Outcome C = runCompiled(*P);
  EXPECT_TRUE(C.Run.ok()) << Src << "\n"
                          << C.Run.statusStr() << ": "
                          << C.Run.Error.Message;
  EXPECT_TRUE(C.Run.Result.isInt()) << Src;
  return C.Run.Result.isInt() ? C.Run.Result.asInt() : 0;
}

// ---- Expression semantics: values ----------------------------------------

TEST(CompileSemantics, ArithmeticAndComparisons) {
  expectMatchesReference("main = 2 + 3 * 4 - 1");
  expectMatchesReference("main = 17 / 5 + 17 % 5");
  expectMatchesReference("main = (0 - 17) / 5");
  expectMatchesReference("main = (3 < 4) + (4 <= 4) + (5 > 4) + (4 >= 5) + "
                         "(2 == 2) + (2 != 2)");
  expectMatchesReference("main = 9223372036854775807 + 1");
  expectMatchesReference("main = (0 - 9223372036854775807 - 1) * 3");
}

TEST(CompileSemantics, LetSeqIfCellsArrays) {
  expectMatchesReference("main = let x = 10 in let y = x + 1 in x * y");
  expectMatchesReference("main = (1; 2; 3)");
  expectMatchesReference("main = if 2 > 1 then 10 else 20");
  expectMatchesReference("main = if 0 then 10 else 20");
  expectMatchesReference("main = let c = new(5) in (c := !c + 1; !c)");
  expectMatchesReference("main = let c = new(1) in (c := 9)");
  expectMatchesReference(
      "main = let a = newarr(4, 7) in (a[2] := a[0] + 1; a[2] + len(a))");
  expectMatchesReference("main = ()");
}

TEST(CompileSemantics, FoldInlinedAndGeneric) {
  // Literal lambda: the resolver marks it Inlined and the compiler
  // lowers it to an in-frame loop.
  expectMatchesReference("main = fold(\\i acc. acc + i, 0, 1, 100)");
  // Empty range returns the initial accumulator untouched.
  expectMatchesReference("main = fold(\\i acc. acc + i, 42, 5, 4)");
  // Single iteration, inclusive bounds.
  expectMatchesReference("main = fold(\\i acc. acc * i, 1, 7, 7)");
  // Non-literal fn position: falls back to the generic curried-call loop.
  expectMatchesReference("fun step(i, acc) = acc * 2 + i\n"
                         "main = fold(step, 0, 1, 10)");
  expectMatchesReference(
      "main = let f = \\i. \\acc. acc + i * i in fold(f, 0, 1, 10)");
}

TEST(CompileSemantics, FoldExtremeBounds) {
  // Near-INT64_MAX bounds terminate and agree with the reference.
  expectMatchesReference(
      "main = fold(\\i acc. acc + 1, 0, 9223372036854775805, "
      "9223372036854775806)");
  // hi == INT64_MAX: the compiled check-then-increment loop terminates
  // with the exact iteration count (the reference evaluator's
  // increment-then-check loop wraps and burns its step budget here, so
  // this is compiled-only coverage, not a differential case).
  auto P = parse("main = fold(\\i acc. acc + 1, 0, 9223372036854775806, "
                 "9223372036854775807)");
  ASSERT_NE(P, nullptr);
  CompiledProgram::Outcome C = runCompiled(*P);
  ASSERT_TRUE(C.Run.ok()) << C.Run.Error.Message;
  EXPECT_EQ(C.Run.Result.asInt(), 2);
}

// ---- Expression semantics: errors match the reference exactly ------------

TEST(CompileErrors, MatchReferenceMessagesAndLocations) {
  expectMatchesReference("main = 1 + ()");
  expectMatchesReference("main = 1 / 0");
  expectMatchesReference("main = 1 % 0");
  expectMatchesReference("main = (0 - 9223372036854775807 - 1) / (0 - 1)");
  expectMatchesReference("main = (0 - 9223372036854775807 - 1) % (0 - 1)");
  expectMatchesReference("main = if () then 1 else 2");
  expectMatchesReference("main = 3 := 4");
  expectMatchesReference("main = !7");
  expectMatchesReference("main = newarr(0 - 1, 0)");
  expectMatchesReference("main = let a = newarr(3, 0) in a[5]");
  expectMatchesReference("main = let a = newarr(3, 0) in a[0 - 1] := 1");
  expectMatchesReference("main = len(12)");
  expectMatchesReference("main = 5(6)");
  expectMatchesReference("main = fold(\\i acc. acc, (), 1, ())");
}

// ---- Closures, currying, partial application -----------------------------

TEST(CompileClosures, CaptureAndNesting) {
  EXPECT_EQ(runInt("main = let a = 5 in"
                   " let f = \\x. \\y. x + y + a in f(1)(2)"),
            8);
  // Capture chains through two lambda levels.
  EXPECT_EQ(runInt("main = let a = 100 in"
                   " let mk = \\x. \\y. \\z. a + x + y + z in mk(1)(2)(3)"),
            106);
  // A closure escaping its defining scope still sees its captures.
  EXPECT_EQ(runInt("fun adder(n) = \\x. x + n\n"
                   "main = let add5 = adder(5) in add5(10) + adder(1)(1)"),
            17);
}

TEST(CompileClosures, PartialAndOverApplication) {
  // Direct calls to top-level functions are exact-arity (the resolver
  // rejects anything else), but a function *value* applies curried:
  // under-application builds a partial application, over-application
  // applies the curried result.
  EXPECT_EQ(runInt("fun add3(a, b, c) = a + b + c\n"
                   "main = let g = add3 in let h = g(1, 2) in h(4)"),
            7);
  EXPECT_EQ(runInt("fun add3(a, b, c) = a + b + c\n"
                   "main = let g = add3 in g(1)(2)(3)"),
            6);
  EXPECT_EQ(runInt("main = (\\x. \\y. x + y)(1, 2)"), 3);
  EXPECT_EQ(runInt("fun pair(a) = \\b. a * 10 + b\n"
                   "main = let p = pair in p(3, 4)"),
            34);
  // Stacked partial applications concatenate their argument prefixes.
  EXPECT_EQ(runInt("fun add4(a, b, c, d) = a * 1000 + b * 100 + c * 10 + d\n"
                   "main = let g = add4 in g(1)(2)(3, 4)"),
            1234);
}

// ---- Speculation constructs ----------------------------------------------

TEST(CompileSpec, SpecfoldMatchesReferenceAndCountsPredictions) {
  auto P = parse("main = specfold(\\i acc. acc + i, "
                 "\\i. (i * (i - 1)) / 2, 1, 100)");
  ASSERT_NE(P, nullptr);
  CompiledProgram::RunOptions RO;
  RO.Config.threads(4);
  RO.ChunkSize = 8;
  CompiledProgram::Outcome C = runCompiled(*P, RO);
  ASSERT_TRUE(C.Run.ok()) << C.Run.Error.Message;
  EXPECT_EQ(C.Run.Result.asInt(), 5050);
  EXPECT_EQ(C.SpecSiteRuns, 1u);
  EXPECT_GT(C.Stats.Predictions, 0);
  EXPECT_EQ(C.Stats.Mispredictions, 0);
}

TEST(CompileSpec, SpecfoldMispredictionsStillCorrect) {
  auto P = parse("main = specfold(\\i acc. acc * 2 + i, "
                 "\\i. if i == 1 then 1 else 0 - 1, 1, 10)");
  ASSERT_NE(P, nullptr);
  CompiledProgram::RunOptions RO;
  RO.Config.threads(4);
  RO.ChunkSize = 2;
  CompiledProgram::Outcome C = runCompiled(*P, RO);
  ASSERT_TRUE(C.Run.ok()) << C.Run.Error.Message;
  EXPECT_EQ(C.Run.Result.asInt(), 3060);
  EXPECT_GT(C.Stats.Mispredictions + C.Stats.FailedPredictions, 0);
}

TEST(CompileSpec, SpecAppliesProducerPredictorConsumer) {
  EXPECT_EQ(runInt("fun work(n) = fold(\\i acc. acc + i, 0, 1, n)\n"
                   "main = spec(work(100), 5050, \\v. v + 1)"),
            5051);
  // Mispredicted guess: the consumer re-executes with the real value.
  auto P = parse("main = spec(41, 0, \\v. v + 1)");
  ASSERT_NE(P, nullptr);
  CompiledProgram::RunOptions RO;
  RO.Config.threads(2);
  CompiledProgram::Outcome C = runCompiled(*P, RO);
  ASSERT_TRUE(C.Run.ok()) << C.Run.Error.Message;
  EXPECT_EQ(C.Run.Result.asInt(), 42);
  EXPECT_GT(C.Stats.Mispredictions + C.Stats.FailedPredictions, 0);
}

TEST(CompileSpec, SpecfoldErrorInsideBodySurfacesAsOutcome) {
  auto P = parse("main = specfold(\\i acc. acc + 1 / (i - 5), "
                 "\\i. 0, 1, 10)");
  ASSERT_NE(P, nullptr);
  CompiledProgram::Outcome C = runCompiled(*P);
  ASSERT_EQ(C.Run.St, interp::RunOutcome::Status::Error);
  EXPECT_EQ(C.Run.Error.Message, "division by zero");
}

TEST(CompileSpec, ShieldAndAttemptBudgetAreStripped) {
  // shield()/attemptBudget() would arm siglongjmp containment, which is
  // incompatible with the compiled runtime (see Compiler.h); run() must
  // strip them and still complete normally.
  auto P = parse("main = specfold(\\i acc. acc + i, "
                 "\\i. (i * (i - 1)) / 2, 1, 64)");
  ASSERT_NE(P, nullptr);
  CompiledProgram::RunOptions RO;
  RO.Config.threads(2).shield(true).attemptBudget(
      std::chrono::milliseconds(1));
  CompiledProgram::Outcome C = runCompiled(*P, RO);
  ASSERT_TRUE(C.Run.ok()) << C.Run.Error.Message;
  EXPECT_EQ(C.Run.Result.asInt(), 2080);
}

TEST(CompileSpec, StatsSnapshotSinkIsFilled) {
  auto P = parse("main = specfold(\\i acc. acc + i, "
                 "\\i. (i * (i - 1)) / 2, 1, 100)");
  ASSERT_NE(P, nullptr);
  rt::stats::Snapshot Snap;
  CompiledProgram::RunOptions RO;
  RO.Config.threads(2).statsOut(&Snap);
  CompiledProgram::Outcome C = runCompiled(*P, RO);
  ASSERT_TRUE(C.Run.ok());
  EXPECT_GT(Snap.Spec.Tasks, 0);
}

TEST(CompileSpec, DeadlineThrowsSpecTimeout) {
  auto P = parse("main = specfold(\\i acc. acc + i, \\i. 0, 1, 100000)");
  ASSERT_NE(P, nullptr);
  auto C = compileOk(*P);
  ASSERT_NE(C, nullptr);
  CompiledProgram::RunOptions RO;
  RO.Config.threads(2).deadline(std::chrono::nanoseconds(1));
  EXPECT_THROW(C->run(RO), rt::SpecTimeoutError);
}

// ---- Resource limits ------------------------------------------------------

TEST(CompileLimits, StepBudgetYieldsStepLimitOutcome) {
  auto P = parse("main = fold(\\i acc. acc + 1, 0, 1, 100000000)");
  ASSERT_NE(P, nullptr);
  CompiledProgram::RunOptions RO;
  RO.MaxSteps = 10000;
  CompiledProgram::Outcome C = runCompiled(*P, RO);
  EXPECT_EQ(C.Run.St, interp::RunOutcome::Status::StepLimit);
  EXPECT_GT(C.Run.Steps, 0u);
}

TEST(CompileLimits, StepBudgetCrossesCallFrames) {
  // Fuel is drawn inside callee frames too: a generic fold driving a
  // closure exhausts the budget mid-call and still unwinds cleanly.
  auto P = parse("fun step(i, acc) = acc + i\n"
                 "main = let f = step in fold(f, 0, 1, 100000000)");
  ASSERT_NE(P, nullptr);
  CompiledProgram::RunOptions RO;
  RO.MaxSteps = 20000;
  CompiledProgram::Outcome C = runCompiled(*P, RO);
  EXPECT_EQ(C.Run.St, interp::RunOutcome::Status::StepLimit);
}

TEST(CompileLimits, BadChunkSizeThrows) {
  auto P = parse("main = 1");
  ASSERT_NE(P, nullptr);
  auto C = compileOk(*P);
  ASSERT_NE(C, nullptr);
  CompiledProgram::RunOptions RO;
  RO.ChunkSize = 0;
  EXPECT_THROW(C->run(RO), std::invalid_argument);
}

TEST(CompileLimits, HugeArrayAllocationIsAnError) {
  auto P = parse("main = len(newarr(4611686018427387904, 0))");
  ASSERT_NE(P, nullptr);
  CompiledProgram::Outcome C = runCompiled(*P);
  ASSERT_EQ(C.Run.St, interp::RunOutcome::Status::Error);
  EXPECT_EQ(C.Run.Error.Message, "speculate heap exhausted");
}

// ---- Admission gate -------------------------------------------------------

TEST(CompileAdmission, CheckerRejectionIsStructured) {
  auto P = parse("main =\n"
                 "  let c = new(0) in\n"
                 "  specfold(\\i acc. (c := !c + 1; acc), \\i. 0, 1, 8);\n"
                 "  !c");
  ASSERT_NE(P, nullptr);
  compile::AdmissionReport Rep;
  auto C = compile::compileProgram(*P, compile::CompileOptions(), &Rep);
  ASSERT_FALSE(bool(C));
  EXPECT_TRUE(Rep.CheckerRan);
  EXPECT_FALSE(Rep.CheckerAccepted);
  EXPECT_FALSE(Rep.Admitted);
  ASSERT_FALSE(Rep.UnsafeSites.empty());
  EXPECT_NE(Rep.WhyNot.find("rollback checker rejected"), std::string::npos)
      << Rep.WhyNot;
  EXPECT_NE(C.error().find("condition"), std::string::npos) << C.error();
}

TEST(CompileAdmission, RequireCheckerAcceptCanBeDisabled) {
  auto P = parse("main =\n"
                 "  let c = new(0) in\n"
                 "  specfold(\\i acc. (c := !c + 1; acc), \\i. 0, 1, 8);\n"
                 "  !c");
  ASSERT_NE(P, nullptr);
  compile::CompileOptions CO;
  CO.RequireCheckerAccept = false;
  compile::AdmissionReport Rep;
  auto C = compile::compileProgram(*P, CO, &Rep);
  ASSERT_TRUE(bool(C)) << C.error();
  EXPECT_TRUE(Rep.Admitted);
  EXPECT_FALSE(Rep.CheckerAccepted);
}

TEST(CompileAdmission, ReportRecordsLoweringDecisions) {
  auto P = parse("fun twice(f, x) = f(f(x))\n"
                 "main = let a = 1 in\n"
                 "  twice(\\x. x + a, 0) +\n"
                 "  fold(\\i acc. acc + i, 0, 1, 3) +\n"
                 "  specfold(\\i acc. acc + i, \\i. (i * (i - 1)) / 2, 1, 4)");
  ASSERT_NE(P, nullptr);
  compile::AdmissionReport Rep;
  auto C = compile::compileProgram(*P, compile::CompileOptions(), &Rep);
  ASSERT_TRUE(bool(C)) << C.error();
  EXPECT_TRUE(Rep.Admitted);
  EXPECT_EQ(Rep.SpecSites, 1u);
  EXPECT_GT(Rep.NodesLowered, 0u);
  EXPECT_TRUE(Rep.Unlowerable.empty());
  std::string Notes;
  for (const compile::NodeDiag &D : Rep.Notes)
    Notes += D.str() + "\n";
  EXPECT_NE(Notes.find("closure-converted"), std::string::npos) << Notes;
  EXPECT_NE(Notes.find("inlined"), std::string::npos) << Notes;
  EXPECT_NE(Notes.find("fused"), std::string::npos) << Notes;
  EXPECT_NE(Notes.find("Speculation::iterateChunked"), std::string::npos)
      << Notes;
  // The human rendering mentions the verdict.
  EXPECT_NE(Rep.str().find("admitted"), std::string::npos) << Rep.str();
}

// ---- The runSpeculate facade ---------------------------------------------

TEST(CompileFacade, SafeProgramTakesCompiledPath) {
  auto P = parse("main = specfold(\\i acc. acc + i, "
                 "\\i. (i * (i - 1)) / 2, 1, 100)");
  ASSERT_NE(P, nullptr);
  compile::SpeculatePlan Plan;
  Plan.Run.Config.threads(4);
  compile::SpeculateRun R = compile::runSpeculate(*P, Plan);
  EXPECT_EQ(R.PathTaken, compile::SpeculateRun::Path::Compiled);
  EXPECT_TRUE(R.WhyNotCompiled.empty()) << R.WhyNotCompiled;
  ASSERT_TRUE(R.Outcome.ok());
  EXPECT_EQ(R.Outcome.Result.asInt(), 5050);
  EXPECT_GT(R.Outcome.Predictions, 0u);
  EXPECT_EQ(R.SpecSiteRuns, 1u);
}

TEST(CompileFacade, RejectedProgramFallsBackToInterpreter) {
  auto P = parse("main =\n"
                 "  let c = new(0) in\n"
                 "  specfold(\\i acc. (c := !c + 1; acc), \\i. 0, 1, 8);\n"
                 "  !c");
  ASSERT_NE(P, nullptr);
  compile::SpeculatePlan Plan;
  Plan.Machine.Seed = 3;
  compile::SpeculateRun R = compile::runSpeculate(*P, Plan);
  EXPECT_EQ(R.PathTaken, compile::SpeculateRun::Path::Interpreter);
  EXPECT_FALSE(R.WhyNotCompiled.empty());
  EXPECT_TRUE(R.Admission.CheckerRan);
  EXPECT_FALSE(R.Admission.CheckerAccepted);
  // The fallback is exactly a reference SpecMachine run with the same
  // options.
  interp::MachineOptions MO;
  MO.Seed = 3;
  interp::SpecRunOutcome Ref = interp::runSpeculative(*P, MO);
  ASSERT_EQ(R.Outcome.St, Ref.St);
  ASSERT_TRUE(Ref.Result.isInt());
  EXPECT_EQ(R.Outcome.Result.asInt(), Ref.Result.asInt());
}

TEST(CompileFacade, NonPrimitiveResultRerunsInterpreted) {
  auto P = parse("main = \\x. x + 1");
  ASSERT_NE(P, nullptr);
  compile::SpeculateRun R = compile::runSpeculate(*P);
  EXPECT_EQ(R.PathTaken, compile::SpeculateRun::Path::Interpreter);
  EXPECT_NE(R.WhyNotCompiled.find("not a primitive"), std::string::npos)
      << R.WhyNotCompiled;
  EXPECT_TRUE(R.Outcome.ok());
}

TEST(CompileFacade, ForceInterpreterSkipsCompilation) {
  auto P = parse("main = 1 + 1");
  ASSERT_NE(P, nullptr);
  compile::SpeculatePlan Plan;
  Plan.ForceInterpreter = true;
  compile::SpeculateRun R = compile::runSpeculate(*P, Plan);
  EXPECT_EQ(R.PathTaken, compile::SpeculateRun::Path::Interpreter);
  EXPECT_NE(R.WhyNotCompiled.find("forced"), std::string::npos);
  EXPECT_FALSE(R.Admission.CheckerRan);
  EXPECT_EQ(R.Outcome.Result.asInt(), 2);
}

// ---- Thread-safety of a shared CompiledProgram ---------------------------

TEST(CompileConcurrency, OneProgramManyConcurrentRuns) {
  auto P = parse("main = specfold(\\i acc. acc + i, "
                 "\\i. (i * (i - 1)) / 2, 1, 200)");
  ASSERT_NE(P, nullptr);
  auto C = compileOk(*P);
  ASSERT_NE(C, nullptr);
  auto Ex = rt::SpecExecutor::create(4);
  std::vector<std::thread> Ts;
  std::atomic<int> Bad{0};
  for (int T = 0; T < 4; ++T)
    Ts.emplace_back([&] {
      for (int I = 0; I < 8; ++I) {
        CompiledProgram::RunOptions RO;
        RO.Config.executor(Ex);
        CompiledProgram::Outcome O = C->run(RO);
        if (!O.Run.ok() || !O.Run.Result.isInt() ||
            O.Run.Result.asInt() != 20100)
          ++Bad;
      }
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Bad.load(), 0);
}

} // namespace
