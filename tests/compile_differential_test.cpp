//===- tests/compile_differential_test.cpp - interp vs compiled corpus ----===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Differential suite over the whole Speculate corpus (bench/speculate
/// and examples/speculate): every program runs under the non-speculative
/// reference evaluator, the seeded SpecMachine, and — when the admission
/// gate accepts it — the native compiler, and all engines must agree on
/// the final value. Programs the gate refuses must fall back to the
/// interpreter through the `runSpeculate` facade with a structured
/// reason naming the failing checker condition.
///
//===----------------------------------------------------------------------===//

#include "compile/Compiler.h"
#include "compile/RunSpeculate.h"
#include "interp/NonSpecEval.h"
#include "interp/SpecMachine.h"
#include "lang/Parser.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

using namespace specpar;
using compile::CompiledProgram;

namespace {

struct DiffCase {
  const char *Dir;
  const char *File;
  int64_t Expected;
  /// Whether the admission gate should accept the program.
  bool Admissible;
  /// Whether the program's predictor is intentionally wrong, so the
  /// native counters must show mispredictions.
  bool ExpectMispredictions;
};

std::unique_ptr<lang::Program> load(const DiffCase &C) {
  std::string Path = std::string(C.Dir) + "/" + C.File;
  std::string Source;
  EXPECT_TRUE(readFileToString(Path, Source)) << Path;
  auto R = lang::parseProgram(Source);
  EXPECT_TRUE(bool(R)) << C.File << ": " << R.error();
  return R ? R.take() : nullptr;
}

class CompiledCorpus : public ::testing::TestWithParam<DiffCase> {};

TEST_P(CompiledCorpus, AllEnginesAgree) {
  const DiffCase &C = GetParam();
  auto P = load(C);
  ASSERT_NE(P, nullptr);

  // Ground truth: the non-speculative reference evaluator.
  interp::RunOutcome N = interp::runNonSpeculative(*P);
  ASSERT_TRUE(N.ok()) << C.File << ": " << N.statusStr();
  ASSERT_TRUE(N.Result.isInt()) << C.File;
  ASSERT_EQ(N.Result.asInt(), C.Expected) << C.File;

  compile::AdmissionReport Rep;
  auto Compiled = compile::compileProgram(*P, compile::CompileOptions(), &Rep);
  ASSERT_EQ(bool(Compiled), C.Admissible)
      << C.File << "\n" << (Compiled ? Rep.str() : Compiled.error());

  if (!C.Admissible) {
    // The refusal must be structured: the checker ran, named the failing
    // site/condition, and the facade transparently runs the reference
    // SpecMachine instead — identically to a direct seeded run.
    EXPECT_TRUE(Rep.CheckerRan) << C.File;
    EXPECT_FALSE(Rep.CheckerAccepted) << C.File;
    ASSERT_FALSE(Rep.UnsafeSites.empty()) << C.File;
    EXPECT_FALSE(Rep.UnsafeSites[0].FailedCondition.empty()) << C.File;
    EXPECT_NE(Rep.WhyNot.find("rollback checker rejected"), std::string::npos)
        << Rep.WhyNot;
    EXPECT_NE(Rep.WhyNot.find("condition"), std::string::npos) << Rep.WhyNot;

    compile::SpeculatePlan Plan;
    Plan.Machine.Seed = 7;
    compile::SpeculateRun R = compile::runSpeculate(*P, Plan);
    EXPECT_EQ(R.PathTaken, compile::SpeculateRun::Path::Interpreter)
        << C.File;
    EXPECT_EQ(R.WhyNotCompiled, Rep.WhyNot) << C.File;
    interp::MachineOptions MO;
    MO.Seed = 7;
    interp::SpecRunOutcome Ref = interp::runSpeculative(*P, MO);
    ASSERT_EQ(R.Outcome.St, Ref.St) << C.File;
    ASSERT_TRUE(Ref.Result.isInt()) << C.File;
    EXPECT_EQ(R.Outcome.Result.asInt(), Ref.Result.asInt()) << C.File;
    EXPECT_EQ(R.Outcome.Steps, Ref.Steps) << C.File;
    return;
  }

  // Compiled runs must reproduce the reference value across thread
  // counts and chunk sizes (misprediction-visible semantics: hints never
  // change the result, only the counters).
  for (unsigned Threads : {1u, 4u}) {
    for (int64_t Chunk : {1, 8}) {
      CompiledProgram::RunOptions RO;
      RO.Config.threads(Threads);
      RO.ChunkSize = Chunk;
      CompiledProgram::Outcome O = (*Compiled)->run(RO);
      ASSERT_TRUE(O.Run.ok())
          << C.File << " threads=" << Threads << " chunk=" << Chunk << ": "
          << O.Run.statusStr() << " " << O.Run.Error.Message;
      ASSERT_TRUE(O.ResultLowered) << C.File;
      ASSERT_TRUE(O.Run.Result.isInt()) << C.File;
      EXPECT_EQ(O.Run.Result.asInt(), C.Expected)
          << C.File << " threads=" << Threads << " chunk=" << Chunk;
    }
  }

  // The facade picks the compiled path and maps the native counters.
  compile::SpeculatePlan Plan;
  Plan.Run.Config.threads(4);
  Plan.Run.ChunkSize = 4;
  compile::SpeculateRun R = compile::runSpeculate(*P, Plan);
  EXPECT_EQ(R.PathTaken, compile::SpeculateRun::Path::Compiled) << C.File;
  ASSERT_TRUE(R.Outcome.ok()) << C.File;
  EXPECT_EQ(R.Outcome.Result.asInt(), C.Expected) << C.File;
  if (C.ExpectMispredictions) {
    EXPECT_GT(R.Outcome.Mispredictions, 0u) << C.File;
  }

  // Seeded SpecMachine runs agree with both.
  for (uint64_t Seed = 1; Seed <= 3; ++Seed) {
    interp::MachineOptions MO;
    MO.Seed = Seed;
    interp::SpecRunOutcome S = interp::runSpeculative(*P, MO);
    ASSERT_TRUE(S.ok()) << C.File << " seed " << Seed;
    ASSERT_TRUE(S.Result.isInt()) << C.File;
    EXPECT_EQ(S.Result.asInt(), C.Expected) << C.File << " seed " << Seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, CompiledCorpus,
    ::testing::Values(
        DiffCase{SPECPAR_EXAMPLES_DIR, "01_hello_spec.spec", 84, true, false},
        DiffCase{SPECPAR_EXAMPLES_DIR, "02_running_sum.spec", 5050, true,
                 false},
        DiffCase{SPECPAR_EXAMPLES_DIR, "03_mispredict.spec", 3060, true,
                 true},
        DiffCase{SPECPAR_EXAMPLES_DIR, "04_slot_writes.spec", 680, true,
                 false},
        DiffCase{SPECPAR_EXAMPLES_DIR, "05_unsafe_counter.spec", 8, false,
                 false},
        DiffCase{SPECPAR_EXAMPLES_DIR, "06_parallel_pair.spec",
                 5050 + 338350, true, false},
        DiffCase{SPECPAR_EXAMPLES_DIR, "07_do_all.spec", 10416, true, false},
        DiffCase{SPECPAR_SPEC_DIR, "huffman.spec", 150150, true, false},
        DiffCase{SPECPAR_SPEC_DIR, "lexing.spec", 54800600, true, false},
        DiffCase{SPECPAR_SPEC_DIR, "mwis.spec", 3241383697LL, true, false}),
    [](const ::testing::TestParamInfo<DiffCase> &I) {
      std::string Name = I.param.File;
      for (char &Ch : Name)
        if (Ch == '.' || Ch == '-')
          Ch = '_';
      return Name;
    });

// The unsafe example's checker verdict names condition (a) specifically:
// the producer's cell writes race with speculative-consumer reads.
TEST(CompiledCorpus5Unsafe, FailingConditionIsConditionA) {
  DiffCase C{SPECPAR_EXAMPLES_DIR, "05_unsafe_counter.spec", 8, false, false};
  auto P = load(C);
  ASSERT_NE(P, nullptr);
  compile::AdmissionReport Rep;
  auto Compiled = compile::compileProgram(*P, compile::CompileOptions(), &Rep);
  ASSERT_FALSE(bool(Compiled));
  ASSERT_FALSE(Rep.UnsafeSites.empty());
  EXPECT_EQ(Rep.UnsafeSites[0].FailedCondition, "(a)") << Rep.str();
}

} // namespace
