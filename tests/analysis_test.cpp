//===- tests/analysis_test.cpp - Rollback-freedom checker tests ------------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/RollbackChecker.h"
#include "analysis/SymExpr.h"
#include "interp/NonSpecEval.h"
#include "interp/SpecMachine.h"
#include "lang/Parser.h"
#include "trace/Equivalence.h"

#include <gtest/gtest.h>

using namespace specpar;
using namespace specpar::analysis;
using namespace specpar::lang;

namespace {

//===----------------------------------------------------------------------===//
// Symbolic expressions and intervals
//===----------------------------------------------------------------------===//

TEST(SymExpr, LinearAlgebra) {
  Binding I{"i", 0};
  SymExpr V = SymExpr::variable(&I);
  SymExpr E = V + SymExpr::constant(3);
  EXPECT_EQ(E.str(), "i + 3");
  EXPECT_EQ((E - V).str(), "3");
  std::optional<SymExpr> M = SymExpr::mul(SymExpr::constant(2), E);
  ASSERT_TRUE(M);
  EXPECT_EQ(M->str(), "2*i + 6");
  EXPECT_FALSE(SymExpr::mul(V, V));
  std::optional<int64_t> D = (V + SymExpr::constant(5)).differenceFrom(V);
  ASSERT_TRUE(D);
  EXPECT_EQ(*D, 5);
  Binding J{"j", 1};
  EXPECT_FALSE(V.differenceFrom(SymExpr::variable(&J)));
}

TEST(SymExpr, Substitution) {
  Binding I{"i", 0};
  SymExpr E = SymExpr::variable(&I) + SymExpr::constant(1);
  SymExpr S = E.substitute(&I, SymExpr::variable(&I) + SymExpr::constant(1));
  EXPECT_EQ(S.str(), "i + 2");
  EXPECT_EQ(E.substitute(&I, SymExpr::constant(10)).str(), "11");
}

TEST(SymInterval, SymbolicDisjointness) {
  Binding I{"i", 0};
  SymExpr V = SymExpr::variable(&I);
  SymInterval At = SymInterval::point(V);
  SymInterval Next = SymInterval::point(V + SymExpr::constant(1));
  EXPECT_FALSE(SymInterval::mayOverlap(At, Next))
      << "[i,i] and [i+1,i+1] are provably disjoint";
  EXPECT_TRUE(SymInterval::mayOverlap(At, At));
  Binding J{"j", 1};
  SymInterval Other = SymInterval::point(SymExpr::variable(&J));
  EXPECT_TRUE(SymInterval::mayOverlap(At, Other))
      << "incomparable bounds must be conservative";
  EXPECT_TRUE(SymInterval::mustContain(SymInterval::full(), At));
  EXPECT_TRUE(SymInterval::mustContain(At, At));
  EXPECT_FALSE(SymInterval::mustContain(At, Next));
}

TEST(SymInterval, JoinWidensIncomparable) {
  Binding I{"i", 0}, J{"j", 1};
  SymInterval A = SymInterval::point(SymExpr::variable(&I));
  SymInterval B = SymInterval::point(SymExpr::variable(&J));
  SymInterval Joined = SymInterval::join(A, B);
  EXPECT_TRUE(Joined.lo().isNegInf());
  EXPECT_TRUE(Joined.hi().isPosInf());
  SymInterval C = SymInterval::point(SymExpr::variable(&I) +
                                     SymExpr::constant(2));
  EXPECT_EQ(SymInterval::join(A, C).str(), "[i, i + 2]");
}

//===----------------------------------------------------------------------===//
// Checker verdicts
//===----------------------------------------------------------------------===//

AnalysisReport analyze(std::string_view Src) {
  auto R = parseProgram(Src);
  EXPECT_TRUE(bool(R)) << R.error() << "\nsource: " << Src;
  return checkRollbackFreedom(**R);
}

void expectSafe(std::string_view Src) {
  AnalysisReport R = analyze(Src);
  EXPECT_TRUE(R.programSafe()) << R.str() << "\nsource: " << Src;
}

void expectUnsafe(std::string_view Src, const char *Condition) {
  AnalysisReport R = analyze(Src);
  EXPECT_FALSE(R.programSafe()) << "source: " << Src;
  bool Found = false;
  for (const SiteReport &S : R.Sites)
    if (!S.Safe && S.FailedCondition == Condition)
      Found = true;
  EXPECT_TRUE(Found) << "expected a " << Condition << " violation;\n"
                     << R.str();
}

TEST(Checker, PureSpeculationIsSafe) {
  expectSafe("main = spec(40 + 2, 42, \\x. x * 2)");
  expectSafe("main = specfold(\\i a. a + i, \\i. 0, 1, 10)");
}

TEST(Checker, SlotWriteIdiomIsSafe) {
  // The paper's central positive example: iteration i writes only its own
  // slot; the re-execution certainly overwrites the speculative write.
  expectSafe("main = let arr = newarr(10, 0) in "
             "specfold(\\i a. (arr[i] := a + i; a + i), \\i. i, 0, 9)");
}

TEST(Checker, ReadOnlySharedInputIsSafe) {
  // Iterations read a shared input array and write disjoint output slots
  // (the MWIS forward pass shape).
  expectSafe("main = let w = newarr(100, 7) in "
             "let d = newarr(100, 0) in "
             "specfold(\\i a. (d[i] := w[i] - a; d[i]), \\i. 0, 0, 99)");
}

TEST(Checker, IterationLocalAllocationIsSafe) {
  // News inside the body are internal; scribbling on them is invisible.
  expectSafe("main = specfold(\\i a. (let t = new(a) in t := !t + i; !t), "
             "\\i. 0, 1, 8)");
}

TEST(Checker, ProducerConsumerDisjointStateIsSafe) {
  expectSafe("main = let out = newarr(4, 0) in "
             "let p = new(0) in "
             "spec((p := 5; !p), 5, \\x. out[1] := x * 2)");
}

TEST(Checker, SharedCounterViolatesA) {
  // c := !c + 1 in the loop body: iteration i writes the cell iteration
  // i+1 reads — the race conditions fire before (d) is even reached.
  expectUnsafe("main = let c = new(0) in "
               "specfold(\\i a. (c := !c + 1; a), \\i. 0, 1, 4)",
               "(a)");
}

TEST(Checker, PerSlotReadModifyWriteViolatesD) {
  // arr[i] := arr[i] + 1: iterations touch disjoint slots, so (a)-(c)
  // hold, but the re-execution of iteration i reads the slot its own
  // speculative run already incremented.
  expectUnsafe("main = let arr = newarr(10, 5) in "
               "specfold(\\i a. (arr[i] := arr[i] + 1; a), \\i. 0, 0, 9)",
               "(d)");
}

TEST(Checker, ProducerWritesConsumerReadsViolatesA) {
  expectUnsafe("main = let c = new(5) in spec((c := 9; 1), 1, \\x. !c + x)",
               "(a)");
}

TEST(Checker, ProducerReadsConsumerWritesViolatesB) {
  expectUnsafe("main = let c = new(5) in spec(!c, 5, \\x. c := x + 1)",
               "(b)");
}

TEST(Checker, BothWriteViolatesC) {
  // Writes to distinct locations reads nothing — make producer write-only
  // and consumer write-only on the same cell.
  expectUnsafe("main = let c = new(0) in "
               "spec((c := 1; 7), 7, \\x. (c := 2; ()))",
               "(c)");
}

TEST(Checker, ConditionalWriteViolatesE) {
  // The speculative consumer may write arr[i], but the re-execution is
  // not certain to overwrite it (a different accumulator may flip the
  // branch).
  expectUnsafe("main = let arr = newarr(10, 0) in "
               "specfold(\\i a. (if a > 0 then arr[i] := a else (); a + 1), "
               "\\i. 0 - 5, 0, 9)",
               "(e)");
}

TEST(Checker, NeighbourSlotWriteViolatesC) {
  // Iteration i writes arr[i] and arr[i+1]: adjacent iterations' write
  // sets overlap.
  expectUnsafe("main = let arr = newarr(20, 0) in "
               "specfold(\\i a. (arr[i] := a; arr[i + 1] := a; a), "
               "\\i. 0, 0, 18)",
               "(c)");
}

TEST(Checker, StridedWritesAreSafe) {
  // arr[2*i] never collides with arr[2*(i+1)] — linear-coefficient
  // disjointness.
  expectSafe("main = let arr = newarr(40, 0) in "
             "specfold(\\i a. (arr[2 * i] := a; a + 1), \\i. i, 0, 19)");
}

TEST(Checker, UnknownIndexViolates) {
  // Index depends on the accumulator (unknown): may collide across
  // iterations.
  AnalysisReport R = analyze(
      "main = let arr = newarr(10, 0) in "
      "specfold(\\i a. (arr[a % 10] := i; a + 1), \\i. i, 0, 9)");
  EXPECT_FALSE(R.programSafe());
}

TEST(Checker, InterproceduralSlotWriteIsSafe) {
  // The paper's SequentialLex shape: the body delegates to a function
  // that performs the slot write.
  expectSafe("fun store(arr, i, v) = arr[i] := v\n"
             "fun body(arr, i, a) = (store(arr, i, a + i); a + i)\n"
             "main = let out = newarr(16, 0) in "
             "specfold(\\i a. body(out, i, a), \\i. i, 0, 15)");
}

TEST(Checker, InterproceduralSharedCounterViolates) {
  AnalysisReport R =
      analyze("fun bump(c) = c := !c + 1\n"
              "main = let c = new(0) in "
              "specfold(\\i a. (bump(c); a), \\i. 0, 1, 4)");
  EXPECT_FALSE(R.programSafe()) << R.str();
}

TEST(Checker, GuessWithSideEffectsViolates) {
  // The predictor writes shared state: W(ec eg) includes it.
  expectUnsafe("main = let c = new(0) in "
               "spec(!c + 1, (c := 3; 3), \\x. x)",
               "(b)");
}

TEST(Checker, HeapGraphDotRendersNodesAndEdges) {
  AnalysisReport R = analyze(
      "main = let inner = new(5) in let outer = new(0) in "
      "outer := 1; let arr = newarr(3, 7) in len(arr)");
  EXPECT_NE(R.HeapGraphDot.find("digraph abstract_heap"), std::string::npos);
  EXPECT_NE(R.HeapGraphDot.find("cell@"), std::string::npos);
  EXPECT_NE(R.HeapGraphDot.find("arr@"), std::string::npos);
  EXPECT_NE(R.HeapGraphDot.find("}"), std::string::npos);
}

TEST(Checker, SummaryNodesRenderWithDoubleBorder) {
  // A cell allocated inside a loop becomes a summary node (peripheries=2
  // in the paper-Figure-5-style rendering).
  AnalysisReport R = analyze(
      "main = fold(\\i a. !new(i) + a, 0, 1, 5)");
  EXPECT_NE(R.HeapGraphDot.find("peripheries=2"), std::string::npos)
      << R.HeapGraphDot;
}

TEST(Checker, NonSpecProgramIsTriviallySafe) {
  AnalysisReport R = analyze("main = fold(\\i a. a + i, 0, 1, 10)");
  EXPECT_TRUE(R.programSafe());
  EXPECT_TRUE(R.Sites.empty());
}

TEST(Checker, UnreachableSiteIsVacuouslySafe) {
  AnalysisReport R = analyze("main = if 1 then 5 else "
                             "spec((new(0) := 1; 1), 1, \\x. x)");
  EXPECT_TRUE(R.programSafe()) << R.str();
  ASSERT_EQ(R.Sites.size(), 1u);
  EXPECT_EQ(R.Sites[0].Explanation, "unreachable");
}

TEST(Checker, SequentialPhasesBothChecked) {
  // Two specfolds in sequence (the MWIS two-phase shape): both sites get
  // verdicts, and a bad second phase is caught.
  AnalysisReport R = analyze(
      "main = let d = newarr(50, 0) in "
      "let t = newarr(50, 0) in "
      "specfold(\\i a. (d[i] := a + i; d[i]), \\i. 0, 0, 49); "
      "let c = new(0) in "
      "specfold(\\i a. (c := !c + d[i]; a), \\i. 0, 0, 49); !c");
  ASSERT_EQ(R.Sites.size(), 2u);
  EXPECT_FALSE(R.programSafe());
  int SafeCount = 0;
  for (const SiteReport &S : R.Sites)
    SafeCount += S.Safe ? 1 : 0;
  EXPECT_EQ(SafeCount, 1);
}

TEST(Checker, BudgetExhaustionIsConservative) {
  CheckerOptions Opts;
  Opts.MaxAbstractSteps = 10;
  auto R = parseProgram("main = let a = newarr(4, 0) in "
                        "specfold(\\i x. (a[i] := x; x), \\i. 0, 0, 3)");
  ASSERT_TRUE(bool(R));
  AnalysisReport Rep = checkRollbackFreedom(**R, Opts);
  EXPECT_TRUE(Rep.BudgetExceeded);
  EXPECT_FALSE(Rep.programSafe());
}

//===----------------------------------------------------------------------===//
// Theorem 1, empirically: checker-approved programs are equivalent under
// every explored schedule; checker rejection correlates with observable
// divergence for the unsafe examples above.
//===----------------------------------------------------------------------===//

class CheckedPrograms : public ::testing::TestWithParam<const char *> {};

TEST_P(CheckedPrograms, SafeVerdictImpliesObservedEquivalence) {
  auto PR = parseProgram(GetParam());
  ASSERT_TRUE(bool(PR)) << PR.error();
  const Program &P = **PR;
  AnalysisReport Rep = checkRollbackFreedom(P);
  ASSERT_TRUE(Rep.programSafe()) << Rep.str();
  interp::RunOutcome N = interp::runNonSpeculative(P);
  ASSERT_TRUE(N.ok());
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    interp::MachineOptions MO;
    MO.Seed = Seed;
    MO.EagerProducerAbort = Seed % 3 == 0; // the Section 3.3 fix preserves
                                           // the theorem too
    interp::SpecRunOutcome S = interp::runSpeculative(P, MO);
    ASSERT_TRUE(S.ok()) << S.statusStr();
    EXPECT_TRUE(tr::checkFinalStateEquivalent(N.Final, S.Final).ok())
        << "seed " << Seed;
    EXPECT_NE(tr::checkDependenceEquivalent(N.Trace, S.Trace).Status,
              tr::EquivStatus::NotEquivalent)
        << "seed " << Seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Programs, CheckedPrograms,
    ::testing::Values(
        "main = spec(6 * 7, 42, \\x. x - 2)",
        "main = let arr = newarr(8, 0) in "
        "specfold(\\i a. (arr[i] := a + i; a + i), \\i. i, 0, 7)",
        "fun store(arr, i, v) = arr[i] := v\n"
        "main = let out = newarr(6, 0) in "
        "specfold(\\i a. (store(out, i, a * 2); a + 1), \\i. i, 0, 5)",
        "main = let w = newarr(12, 3) in let d = newarr(12, 0) in "
        "specfold(\\i a. (d[i] := w[i] - a; d[i]), \\i. 0, 0, 11)"));

} // namespace
