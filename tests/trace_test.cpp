//===- tests/trace_test.cpp - Equivalence checker tests --------------------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/NonSpecEval.h"
#include "interp/SpecMachine.h"
#include "lang/Parser.h"
#include "trace/Equivalence.h"

#include <gtest/gtest.h>

using namespace specpar;
using namespace specpar::tr;
using namespace specpar::interp;

namespace {

//===----------------------------------------------------------------------===//
// Reads-from and last-writer computations
//===----------------------------------------------------------------------===//

TEST(TraceAnalysis, ReadsFromChainsThroughWrites) {
  Trace T;
  T.alloc(0, MemLoc{1, 0}, LabelValue::intValue(5)); // 0
  T.get(0, MemLoc{1, 0}, LabelValue::intValue(5));   // 1 <- 0
  T.set(0, MemLoc{1, 0}, LabelValue::intValue(9));   // 2
  T.get(0, MemLoc{1, 0}, LabelValue::intValue(9));   // 3 <- 2
  auto RF = computeReadsFrom(T);
  EXPECT_EQ(RF[1], 0);
  EXPECT_EQ(RF[3], 2);
  auto Last = computeLastWriters(T);
  EXPECT_EQ(Last[(MemLoc{1, 0})], 2);
}

TEST(TraceAnalysis, ArrayAllocWritesAllSlots) {
  Trace T;
  T.allocArr(0, 7, 3, LabelValue::intValue(0));      // 0
  T.get(0, MemLoc{7, 2}, LabelValue::intValue(0));   // 1 <- 0
  T.set(0, MemLoc{7, 1}, LabelValue::intValue(4));   // 2
  T.get(0, MemLoc{7, 1}, LabelValue::intValue(4));   // 3 <- 2
  auto RF = computeReadsFrom(T);
  EXPECT_EQ(RF[1], 0);
  EXPECT_EQ(RF[3], 2);
  auto Last = computeLastWriters(T);
  EXPECT_EQ(Last[(MemLoc{7, 0})], 0);
  EXPECT_EQ(Last[(MemLoc{7, 1})], 2);
  EXPECT_EQ(Last[(MemLoc{7, 2})], 0);
}

//===----------------------------------------------------------------------===//
// Dependence embedding on hand-built traces
//===----------------------------------------------------------------------===//

Trace simpleN() {
  Trace N;
  N.alloc(0, MemLoc{1, 0}, LabelValue::intValue(0));
  N.set(0, MemLoc{1, 0}, LabelValue::intValue(42));
  N.get(0, MemLoc{1, 0}, LabelValue::intValue(42));
  return N;
}

TEST(Embedding, IdenticalTracesAreEquivalent) {
  Trace N = simpleN();
  EXPECT_TRUE(checkDependenceEquivalent(N, N).ok());
}

TEST(Embedding, LocationRenamingIsAllowed) {
  Trace N;
  N.alloc(0, MemLoc{1, 0}, LabelValue::intValue(1));
  N.alloc(0, MemLoc{2, 0}, LabelValue::intValue(2));
  N.get(0, MemLoc{1, 0}, LabelValue::intValue(1));
  Trace S;
  S.alloc(0, MemLoc{10, 0}, LabelValue::intValue(2)); // allocation order
  S.alloc(0, MemLoc{11, 0}, LabelValue::intValue(1)); // swapped
  S.get(0, MemLoc{11, 0}, LabelValue::intValue(1));
  EXPECT_TRUE(checkDependenceEquivalent(N, S).ok());
}

TEST(Embedding, ExtraGarbageAllocationsAreAllowed) {
  Trace N = simpleN();
  Trace S = simpleN();
  // A mispredicted speculative thread allocated and scribbled on its own
  // garbage cell: harmless.
  S.alloc(5, MemLoc{99, 0}, LabelValue::intValue(7));
  S.set(5, MemLoc{99, 0}, LabelValue::intValue(8));
  EXPECT_TRUE(checkDependenceEquivalent(N, S).ok());
}

TEST(Embedding, GarbageWriteBetweenDependentPairBreaksEquivalence) {
  Trace N = simpleN();
  Trace S;
  S.alloc(0, MemLoc{1, 0}, LabelValue::intValue(0));
  S.set(0, MemLoc{1, 0}, LabelValue::intValue(42));
  S.set(5, MemLoc{1, 0}, LabelValue::intValue(999)); // interloper
  S.get(0, MemLoc{1, 0}, LabelValue::intValue(999)); // observed!
  // The speculative read observes the interloper's value, so it has no
  // counterpart with a matching label and reads-from edge.
  EXPECT_FALSE(checkDependenceEquivalent(N, S).ok());
}

TEST(Embedding, IndistinguishableDuplicateWriteIsEquivalent) {
  // A re-execution writing the same value the speculative run wrote is
  // fine — either write can serve as the image of the non-speculative
  // one (the definition only constrains labels and dependences).
  Trace N = simpleN();
  Trace S;
  S.alloc(0, MemLoc{1, 0}, LabelValue::intValue(0));
  S.set(5, MemLoc{1, 0}, LabelValue::intValue(42)); // speculative write
  S.set(0, MemLoc{1, 0}, LabelValue::intValue(42)); // re-execution
  S.get(0, MemLoc{1, 0}, LabelValue::intValue(42));
  EXPECT_TRUE(checkDependenceEquivalent(N, S).ok());
}

TEST(Embedding, OverwrittenSpeculativeWriteIsAllowed) {
  // Condition (e)'s pattern: the speculative consumer wrote a wrong value
  // that the re-execution overwrites before anyone reads it.
  Trace N;
  N.alloc(0, MemLoc{1, 0}, LabelValue::intValue(0));
  N.set(0, MemLoc{1, 0}, LabelValue::intValue(42));
  Trace S;
  S.alloc(0, MemLoc{1, 0}, LabelValue::intValue(0));
  S.set(7, MemLoc{1, 0}, LabelValue::intValue(999)); // wasted speculation
  S.set(0, MemLoc{1, 0}, LabelValue::intValue(42));  // re-execution
  EXPECT_TRUE(checkDependenceEquivalent(N, S).ok());
}

TEST(Embedding, FinalValueMustComeFromMappedWrite) {
  Trace N;
  N.alloc(0, MemLoc{1, 0}, LabelValue::intValue(0));
  N.set(0, MemLoc{1, 0}, LabelValue::intValue(42));
  Trace S;
  S.alloc(0, MemLoc{1, 0}, LabelValue::intValue(0));
  S.set(0, MemLoc{1, 0}, LabelValue::intValue(42));
  S.set(9, MemLoc{1, 0}, LabelValue::intValue(999)); // late garbage write
  EXPECT_FALSE(checkDependenceEquivalent(N, S).ok())
      << "the final heap dependence (condition 3) must be preserved";
}

TEST(Embedding, ValueMismatchRejected) {
  Trace N = simpleN();
  Trace S;
  S.alloc(0, MemLoc{1, 0}, LabelValue::intValue(0));
  S.set(0, MemLoc{1, 0}, LabelValue::intValue(41));
  S.get(0, MemLoc{1, 0}, LabelValue::intValue(41));
  EXPECT_FALSE(checkDependenceEquivalent(N, S).ok());
}

TEST(Embedding, LocationValuesMapThroughMu) {
  // A cell that stores a reference to another cell.
  Trace N;
  N.alloc(0, MemLoc{1, 0}, LabelValue::intValue(3));
  N.alloc(0, MemLoc{2, 0}, LabelValue::cellLoc(1));
  N.get(0, MemLoc{2, 0}, LabelValue::cellLoc(1));
  Trace S;
  S.alloc(0, MemLoc{8, 0}, LabelValue::intValue(3));
  S.alloc(0, MemLoc{9, 0}, LabelValue::cellLoc(8));
  S.get(0, MemLoc{9, 0}, LabelValue::cellLoc(8));
  EXPECT_TRUE(checkDependenceEquivalent(N, S).ok());
  // Breaking the pointer structure must be caught.
  Trace Bad;
  Bad.alloc(0, MemLoc{8, 0}, LabelValue::intValue(3));
  Bad.alloc(0, MemLoc{9, 0}, LabelValue::cellLoc(9)); // self loop instead
  Bad.get(0, MemLoc{9, 0}, LabelValue::cellLoc(9));
  EXPECT_FALSE(checkDependenceEquivalent(N, Bad).ok());
}

//===----------------------------------------------------------------------===//
// Final-state equivalence
//===----------------------------------------------------------------------===//

TEST(FinalStateEquiv, IntResult) {
  FinalState A, B;
  A.Result = LabelValue::intValue(42);
  B.Result = LabelValue::intValue(42);
  EXPECT_TRUE(checkFinalStateEquivalent(A, B).ok());
  B.Result = LabelValue::intValue(41);
  EXPECT_FALSE(checkFinalStateEquivalent(A, B).ok());
}

TEST(FinalStateEquiv, ReachableGraphModuloRenaming) {
  FinalState A;
  A.Result = LabelValue::cellLoc(1);
  A.Cells[1] = LabelValue::cellLoc(2);
  A.Cells[2] = LabelValue::intValue(5);
  FinalState B;
  B.Result = LabelValue::cellLoc(20);
  B.Cells[20] = LabelValue::cellLoc(10);
  B.Cells[10] = LabelValue::intValue(5);
  B.Cells[99] = LabelValue::intValue(7); // unreachable garbage: allowed
  EXPECT_TRUE(checkFinalStateEquivalent(A, B).ok());
  B.Cells[10] = LabelValue::intValue(6);
  EXPECT_FALSE(checkFinalStateEquivalent(A, B).ok());
}

TEST(FinalStateEquiv, SharingMustBePreserved) {
  // A: two distinct cells with equal contents; B: one shared cell.
  FinalState A;
  A.Result = LabelValue::arrLoc(1);
  A.Arrays[1] = {LabelValue::cellLoc(2), LabelValue::cellLoc(3)};
  A.Cells[2] = LabelValue::intValue(5);
  A.Cells[3] = LabelValue::intValue(5);
  FinalState B;
  B.Result = LabelValue::arrLoc(1);
  B.Arrays[1] = {LabelValue::cellLoc(2), LabelValue::cellLoc(2)};
  B.Cells[2] = LabelValue::intValue(5);
  EXPECT_FALSE(checkFinalStateEquivalent(A, B).ok())
      << "the correspondence must be injective";
  EXPECT_FALSE(checkFinalStateEquivalent(B, A).ok());
}

TEST(FinalStateEquiv, ArrayShapes) {
  FinalState A, B;
  A.Result = LabelValue::arrLoc(1);
  A.Arrays[1] = {LabelValue::intValue(1), LabelValue::intValue(2)};
  B.Result = LabelValue::arrLoc(4);
  B.Arrays[4] = {LabelValue::intValue(1), LabelValue::intValue(2)};
  EXPECT_TRUE(checkFinalStateEquivalent(A, B).ok());
  B.Arrays[4].push_back(LabelValue::intValue(3));
  EXPECT_FALSE(checkFinalStateEquivalent(A, B).ok());
}

//===----------------------------------------------------------------------===//
// End-to-end: Theorem 1 behaviour on real programs
//===----------------------------------------------------------------------===//

std::unique_ptr<lang::Program> parse(std::string_view Src) {
  auto R = lang::parseProgram(Src);
  EXPECT_TRUE(bool(R)) << R.error();
  return R.take();
}

/// Rollback-free programs: every speculative execution is dependence- and
/// final-state-equivalent to the non-speculative one (Theorem 1).
class SafeProgramEquivalence : public ::testing::TestWithParam<const char *> {
};

TEST_P(SafeProgramEquivalence, EverySpeculativeScheduleIsEquivalent) {
  auto P = parse(GetParam());
  RunOutcome N = runNonSpeculative(*P);
  ASSERT_TRUE(N.ok()) << N.statusStr();
  for (SchedulerKind K : {SchedulerKind::Random, SchedulerKind::RoundRobin,
                          SchedulerKind::NonSpecPriority}) {
    for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
      MachineOptions Opts;
      Opts.Sched = K;
      Opts.Seed = Seed;
      SpecRunOutcome S = runSpeculative(*P, Opts);
      ASSERT_TRUE(S.ok()) << S.statusStr();
      EquivResult Fin = checkFinalStateEquivalent(N.Final, S.Final);
      EXPECT_TRUE(Fin.ok()) << "final-state: " << Fin.Explanation
                            << " (sched=" << int(K) << " seed=" << Seed
                            << ")";
      EquivResult Dep = checkDependenceEquivalent(N.Trace, S.Trace);
      EXPECT_NE(Dep.Status, EquivStatus::NotEquivalent)
          << "dependence: " << Dep.Explanation << " (sched=" << int(K)
          << " seed=" << Seed << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Programs, SafeProgramEquivalence,
    ::testing::Values(
        // Pure computation.
        "main = specfold(\\i a. a + i * i, \\i. 0, 1, 6)",
        // Producer allocates and returns its own state; consumer only
        // reads its argument.
        "main = spec(!new(21), 21, \\x. x + x)",
        // The slot-write idiom: iteration i writes only arr[i], reads
        // nothing; re-execution overwrites the speculative write.
        "main = let arr = newarr(6, 0) in "
        "specfold(\\i a. (arr[i] := a + i; a + i), \\i. i, 0, 5); arr",
        // Iteration-local allocation: news in the consumer don't escape.
        "main = specfold(\\i a. !new(a + i), \\i. 0 - i, 1, 5)",
        // Disjoint state: producer writes its cell, consumer writes its
        // own array slot.
        "main = let a = newarr(4, 0) in "
        "let p = new(0) in "
        "spec((p := 5; !p), 5, \\x. a[1] := x * 2); a[1] + !p"));

/// Unsafe programs (violating the rollback-freedom conditions): some
/// schedule must reveal non-equivalence — the misprediction side effects
/// or racing accesses are observable.
class UnsafeProgramDivergence
    : public ::testing::TestWithParam<const char *> {};

TEST_P(UnsafeProgramDivergence, SomeScheduleDiverges) {
  auto P = parse(GetParam());
  RunOutcome N = runNonSpeculative(*P);
  ASSERT_TRUE(N.ok()) << N.statusStr();
  bool AnyDivergence = false;
  for (SchedulerKind K : {SchedulerKind::Random, SchedulerKind::RoundRobin}) {
    for (uint64_t Seed = 1; Seed <= 25 && !AnyDivergence; ++Seed) {
      MachineOptions Opts;
      Opts.Sched = K;
      Opts.Seed = Seed;
      SpecRunOutcome S = runSpeculative(*P, Opts);
      if (!S.ok()) {
        AnyDivergence = true; // e.g. a speculative error became fatal
        break;
      }
      if (!checkFinalStateEquivalent(N.Final, S.Final).ok() ||
          checkDependenceEquivalent(N.Trace, S.Trace).Status ==
              EquivStatus::NotEquivalent)
        AnyDivergence = true;
    }
  }
  EXPECT_TRUE(AnyDivergence)
      << "expected at least one diverging schedule for an unsafe program";
}

INSTANTIATE_TEST_SUITE_P(
    Programs, UnsafeProgramDivergence,
    ::testing::Values(
        // Violates (d)/(e): the consumer increments a pre-existing cell;
        // mispredicted runs leave extra increments behind.
        "main = let c = new(0) in "
        "specfold(\\i a. (c := !c + 1; a), \\i. if i == 1 then 0 else 9, "
        "1, 4); !c",
        // Violates (a)/(b): producer writes the cell the speculative
        // consumer reads.
        "main = let c = new(5) in spec((c := 9; 1), 1, \\x. !c + x)",
        // Violates (c): both write the same cell; order matters.
        "main = let c = new(0) in "
        "spec((c := 1; 0), 0, \\x. c := 2); !c"));

TEST(Embedding, BudgetExhaustionReportsResourceLimit) {
  // Many identical events force heavy backtracking; a tiny budget must
  // surface ResourceLimit instead of a wrong verdict.
  // Thirteen interchangeable N allocations vs twelve S allocations: the
  // mismatch is only detected at full depth, after exploring the
  // factorially many symmetric prefixes.
  Trace N, S;
  for (int I = 0; I < 13; ++I)
    N.alloc(0, MemLoc{static_cast<uint64_t>(I + 1), 0},
            LabelValue::intValue(7));
  for (int I = 0; I < 12; ++I)
    S.alloc(0, MemLoc{static_cast<uint64_t>(I + 1), 0},
            LabelValue::intValue(7));
  EquivResult R = checkDependenceEquivalent(N, S, /*Budget=*/50);
  EXPECT_EQ(R.Status, EquivStatus::ResourceLimit);
}

} // namespace
