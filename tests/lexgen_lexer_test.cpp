//===- tests/lexgen_lexer_test.cpp - Lexer and range-lexing tests ---------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//

#include "lexgen/Languages.h"
#include "lexgen/Lexer.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace specpar;
using namespace specpar::lexgen;

namespace {

Lexer tinyLexer() {
  Result<Lexer> L = Lexer::compile({
      {"word", "[a-z]+", false},
      {"num", "\\d+", false},
      {"ws", " +", true},
  });
  EXPECT_TRUE(bool(L)) << L.error();
  return L.take();
}

std::string tokenKinds(const Lexer &L, const std::vector<Token> &Toks) {
  std::string Out;
  for (const Token &T : Toks) {
    if (!Out.empty())
      Out += ' ';
    Out += T.Rule == NoRule ? "<err>" : L.rules()[T.Rule].Name;
  }
  return Out;
}

TEST(Lexer, BasicTokenization) {
  Lexer L = tinyLexer();
  std::vector<Token> T = L.lexAll("abc 12 de");
  ASSERT_EQ(T.size(), 3u);
  EXPECT_EQ(tokenKinds(L, T), "word num word");
  EXPECT_EQ(T[0].Start, 0);
  EXPECT_EQ(T[0].End, 3);
  EXPECT_EQ(T[1].Start, 4);
  EXPECT_EQ(T[1].End, 6);
  EXPECT_EQ(T[2].Start, 7);
  EXPECT_EQ(T[2].End, 9);
}

TEST(Lexer, ErrorBytesBecomeErrorTokens) {
  Lexer L = tinyLexer();
  std::vector<Token> T = L.lexAll("ab!cd");
  ASSERT_EQ(T.size(), 3u);
  EXPECT_EQ(T[1].Rule, NoRule);
  EXPECT_EQ(T[1].Start, 2);
  EXPECT_EQ(T[1].End, 3);
}

TEST(Lexer, MaximalMunchBacktracks) {
  // "ab" vs "abc": input "abd" must lex as [ab][d-error]... build rules so
  // the scanner overshoots then backtracks.
  Result<Lexer> LR = Lexer::compile({
      {"ab", "ab", false},
      {"abc", "abc", false},
      {"d", "d", false},
  });
  ASSERT_TRUE(bool(LR)) << LR.error();
  Lexer L = LR.take();
  std::vector<Token> T = L.lexAll("abd");
  ASSERT_EQ(T.size(), 2u);
  EXPECT_EQ(L.rules()[T[0].Rule].Name, "ab");
  EXPECT_EQ(L.rules()[T[1].Rule].Name, "d");
}

TEST(Lexer, EmptyInput) {
  Lexer L = tinyLexer();
  EXPECT_TRUE(L.lexAll("").empty());
}

TEST(Lexer, TrailingPartialTokenIsFlushed) {
  Lexer L = tinyLexer();
  std::vector<Token> T = L.lexAll("abc");
  ASSERT_EQ(T.size(), 1u);
  EXPECT_EQ(T[0].End, 3);
}

/// The composition law behind speculative lexing: lexing [0,k) then [k,n)
/// with the carried state equals lexing [0,n) in one go — for every split
/// point k.
TEST(Lexer, RangeCompositionAtEverySplitPoint) {
  Lexer L = tinyLexer();
  std::string Text = "abc 123 de 45 fgh 6 i 78 jkl";
  int64_t N = static_cast<int64_t>(Text.size());
  std::vector<Token> Whole = L.lexAll(Text);
  for (int64_t K = 0; K <= N; ++K) {
    std::vector<Token> Split;
    LexState S = L.lexRange(Text, 0, K, L.initialState(0), &Split);
    S = L.lexRange(Text, K, N, S, &Split);
    L.finishLex(Text, S, &Split);
    EXPECT_EQ(Split, Whole) << "split at " << K;
  }
}

/// Overlap prediction: with a large enough overlap the predicted state
/// equals the true carried state (the paper's "max speedup" setting).
TEST(Lexer, PredictorConvergesWithOverlap) {
  Lexer L = tinyLexer();
  std::string Text = "aaa 11 bb 22 cc 33 dddd 444 ee";
  int64_t N = static_cast<int64_t>(Text.size());
  int64_t Boundary = N / 2;
  LexState Truth = L.lexRange(Text, 0, Boundary, L.initialState(0), nullptr);
  // Overlap covering at least one full token boundary resynchronizes.
  LexState Pred = L.predictStateAt(Text, Boundary, /*Overlap=*/8);
  EXPECT_TRUE(Pred == Truth);
}

TEST(Lexer, PredictorAtStartOfInput) {
  Lexer L = tinyLexer();
  LexState Pred = L.predictStateAt("abc def", 0, 16);
  EXPECT_TRUE(Pred == L.initialState(0));
}

struct LangCase {
  Language Lang;
  const char *Snippet;
  size_t MinTokens;
};

class LanguageLexing : public ::testing::TestWithParam<LangCase> {};

TEST_P(LanguageLexing, SnippetLexesWithoutErrors) {
  const LangCase &C = GetParam();
  Lexer L = makeLexer(C.Lang);
  std::vector<Token> T = L.lexAll(C.Snippet);
  EXPECT_GE(T.size(), C.MinTokens);
  for (const Token &Tok : T)
    EXPECT_NE(Tok.Rule, NoRule)
        << "error token at " << Tok.Start << " in " << languageName(C.Lang);
  // Tokens are non-overlapping and ordered.
  for (size_t I = 1; I < T.size(); ++I)
    EXPECT_LE(T[I - 1].End, T[I].Start);
}

INSTANTIATE_TEST_SUITE_P(
    Snippets, LanguageLexing,
    ::testing::Values(
        LangCase{Language::C,
                 "int main(void) {\n"
                 "  /* block\n comment */\n"
                 "  float x = 3.25e-1f; // line\n"
                 "  return x >= 0 ? 0x1FUL : -1;\n"
                 "}\n",
                 20},
        LangCase{Language::Java,
                 "@Override\npublic static void main(String[] args) {\n"
                 "  long n = 1_000L; double d = 2.5e3;\n"
                 "  if (n >= 0 && d != 0) { n >>>= 2; }\n"
                 "}\n",
                 25},
        LangCase{Language::Html,
                 "<!DOCTYPE html><html><!-- a comment -->\n"
                 "<body class=\"x\">Hello &amp; welcome &#38; more"
                 "</body></html>",
                 8},
        LangCase{Language::Latex,
                 "\\documentclass{article} % preamble\n"
                 "\\begin{document} Hello $x^2_i$ \\& done~now"
                 "\\end{document}\n",
                 12}));

/// Every language lexer satisfies the range-composition law on its own
/// snippet, at every split point.
TEST_P(LanguageLexing, RangeCompositionHolds) {
  const LangCase &C = GetParam();
  Lexer L = makeLexer(C.Lang);
  std::string Text = C.Snippet;
  int64_t N = static_cast<int64_t>(Text.size());
  std::vector<Token> Whole = L.lexAll(Text);
  for (int64_t K = 0; K <= N; K += 7) {
    std::vector<Token> Split;
    LexState S = L.lexRange(Text, 0, K, L.initialState(0), &Split);
    S = L.lexRange(Text, K, N, S, &Split);
    L.finishLex(Text, S, &Split);
    EXPECT_EQ(Split, Whole) << languageName(C.Lang) << " split at " << K;
  }
}

TEST(LanguageLexing, FsmSizeOrderingMatchesPaper) {
  // The paper: "The lexical analyzer for C has the largest FSM whereas the
  // one for Latex has the smallest FSM."
  uint32_t CSize = makeLexer(Language::C).numDfaStates();
  uint32_t JavaSize = makeLexer(Language::Java).numDfaStates();
  uint32_t HtmlSize = makeLexer(Language::Html).numDfaStates();
  uint32_t LatexSize = makeLexer(Language::Latex).numDfaStates();
  EXPECT_GT(CSize, HtmlSize);
  EXPECT_GT(JavaSize, HtmlSize);
  EXPECT_GT(HtmlSize, 0u);
  EXPECT_LT(LatexSize, CSize);
  EXPECT_LT(LatexSize, JavaSize);
  EXPECT_LT(LatexSize, HtmlSize);
}

} // namespace
