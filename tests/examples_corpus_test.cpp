//===- tests/examples_corpus_test.cpp - examples/speculate corpus ---------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Keeps the pedagogical examples/speculate corpus honest: every program
/// parses, produces the documented result under both semantics, and gets
/// the documented checker verdict (the one marked UNSAFE is rejected and
/// actually diverges under some schedule).
///
//===----------------------------------------------------------------------===//

#include "analysis/RollbackChecker.h"
#include "interp/NonSpecEval.h"
#include "interp/SpecMachine.h"
#include "lang/Parser.h"
#include "support/StringUtils.h"
#include "trace/Equivalence.h"

#include <gtest/gtest.h>

using namespace specpar;

namespace {

struct CorpusCase {
  const char *File;
  int64_t Expected;
  bool Safe;
};

std::unique_ptr<lang::Program> load(const char *Name) {
  std::string Path = std::string(SPECPAR_EXAMPLES_DIR) + "/" + Name;
  std::string Source;
  EXPECT_TRUE(readFileToString(Path, Source)) << Path;
  auto R = lang::parseProgram(Source);
  EXPECT_TRUE(bool(R)) << Name << ": " << R.error();
  return R ? R.take() : nullptr;
}

class SpeculateCorpus : public ::testing::TestWithParam<CorpusCase> {};

TEST_P(SpeculateCorpus, BehavesAsDocumented) {
  const CorpusCase &C = GetParam();
  auto P = load(C.File);
  ASSERT_NE(P, nullptr);

  interp::RunOutcome N = interp::runNonSpeculative(*P);
  ASSERT_TRUE(N.ok()) << N.statusStr();
  ASSERT_TRUE(N.Result.isInt());
  EXPECT_EQ(N.Result.asInt(), C.Expected) << C.File;

  analysis::AnalysisReport Rep = analysis::checkRollbackFreedom(*P);
  EXPECT_EQ(Rep.programSafe(), C.Safe) << C.File << "\n" << Rep.str();

  bool AnyDivergence = false;
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    interp::MachineOptions MO;
    MO.Seed = Seed;
    interp::SpecRunOutcome S = interp::runSpeculative(*P, MO);
    ASSERT_TRUE(S.ok()) << S.statusStr();
    bool Equivalent = tr::checkFinalStateEquivalent(N.Final, S.Final).ok();
    if (C.Safe) {
      EXPECT_TRUE(Equivalent) << C.File << " seed " << Seed;
    }
    AnyDivergence = AnyDivergence || !Equivalent;
  }
  if (!C.Safe) {
    EXPECT_TRUE(AnyDivergence)
        << C.File << ": the UNSAFE example should actually diverge";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Files, SpeculateCorpus,
    ::testing::Values(CorpusCase{"01_hello_spec.spec", 84, true},
                      CorpusCase{"02_running_sum.spec", 5050, true},
                      CorpusCase{"03_mispredict.spec", 3060, true},
                      CorpusCase{"04_slot_writes.spec", 680, true},
                      CorpusCase{"05_unsafe_counter.spec", 8, false},
                      CorpusCase{"06_parallel_pair.spec",
                                 5050 + 338350, true},
                      CorpusCase{"07_do_all.spec", 10416, true}));

} // namespace
