//===- tests/analysis_effects_test.cpp - Effect-set unit tests -------------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Effects.h"

#include <gtest/gtest.h>

using namespace specpar;
using namespace specpar::analysis;

namespace {

/// Fixture with a few nodes and bindings to build effects from.
class EffectsTest : public ::testing::Test {
protected:
  EffectsTest() {
    Arr = Table.nodeFor(reinterpret_cast<const lang::Expr *>(&ArrTag),
                        /*IsArray=*/true, 1, false);
    Cell = Table.nodeFor(reinterpret_cast<const lang::Expr *>(&CellTag),
                         /*IsArray=*/false, 2, false);
    Late = Table.nodeFor(reinterpret_cast<const lang::Expr *>(&LateTag),
                         /*IsArray=*/false, 10, false);
  }

  SymInterval at(int64_t V) {
    return SymInterval::point(SymExpr::constant(V));
  }
  SymInterval atVar() { return SymInterval::point(SymExpr::variable(&I)); }

  int ArrTag = 0, CellTag = 0, LateTag = 0;
  NodeTable Table;
  AbsNode *Arr, *Cell, *Late;
  lang::Binding I{"i", 0};
};

TEST_F(EffectsTest, ReadBeforeWriteRefinement) {
  Effects E;
  E.write(Cell, at(0), /*Certain=*/true);
  E.read(Cell, at(0)); // read after a must-write: internal
  EXPECT_TRUE(E.MayRead.empty());
  EXPECT_FALSE(E.MayWrite.empty());

  Effects F;
  F.read(Cell, at(0)); // read first: in R
  F.write(Cell, at(0), true);
  EXPECT_FALSE(F.MayRead.empty());
}

TEST_F(EffectsTest, UncertainWritesDoNotShadowReads) {
  Effects E;
  E.write(Cell, at(0), /*Certain=*/false);
  E.read(Cell, at(0));
  EXPECT_FALSE(E.MayRead.empty())
      << "a may-write cannot make later reads internal";
}

TEST_F(EffectsTest, SummaryNodesNeverMustWrite) {
  Arr->Single = false;
  Effects E;
  E.write(Arr, at(3), /*Certain=*/true);
  EXPECT_TRUE(E.MustWrite.Map.empty());
  EXPECT_FALSE(E.MayWrite.empty());
}

TEST_F(EffectsTest, SequenceComposesReadsAndMusts) {
  Effects A;
  A.write(Cell, at(0), true);
  Effects B;
  B.read(Cell, at(0));  // shadowed by A's must-write
  B.read(Arr, at(1));   // genuinely new
  B.write(Arr, at(2), true);
  A.sequence(B);
  EXPECT_EQ(A.MayRead.Map.count(Cell), 0u);
  EXPECT_EQ(A.MayRead.Map.count(Arr), 1u);
  EXPECT_TRUE(A.MustWrite.covers(Cell, at(0)));
  EXPECT_TRUE(A.MustWrite.covers(Arr, at(2)));
}

TEST_F(EffectsTest, BranchJoinMeetsMusts) {
  Effects Then;
  Then.write(Cell, at(0), true);
  Then.write(Arr, at(1), true);
  Effects Else;
  Else.write(Cell, at(0), true);
  Effects Joined = Effects::joinBranches(Then, Else);
  EXPECT_TRUE(Joined.MustWrite.covers(Cell, at(0)))
      << "written on both paths";
  EXPECT_FALSE(Joined.MustWrite.covers(Arr, at(1)))
      << "written on one path only";
  EXPECT_EQ(Joined.MayWrite.Map.count(Arr), 1u);
}

TEST_F(EffectsTest, RestrictToPreExistingDropsInternalNodes) {
  Effects E;
  E.read(Cell, at(0));  // birth epoch 2
  E.write(Late, at(0), true); // birth epoch 10
  Effects R = E.restrictToPreExisting(/*Epoch=*/5);
  EXPECT_EQ(R.MayRead.Map.count(Cell), 1u);
  EXPECT_EQ(R.MayWrite.Map.count(Late), 0u);
  EXPECT_FALSE(R.MustWrite.covers(Late, at(0)));
}

TEST_F(EffectsTest, UniversalPoisonsEverything) {
  Effects E;
  E.read(Cell, at(0));
  E.setUniversal();
  EXPECT_TRUE(E.MayRead.Universal);
  EXPECT_TRUE(E.MayWrite.Universal);
  EXPECT_TRUE(E.MustWrite.Map.empty());
  std::string Why;
  Effects Other;
  Other.read(Arr, at(7));
  EXPECT_FALSE(provablyDisjoint(E.MayWrite, Other.MayRead, &Why));
  EXPECT_FALSE(provablyCovers(E.MustWrite, Other.MayRead, &Why));
}

TEST_F(EffectsTest, DisjointnessUsesIntervalsOnArraysOnly) {
  Effects A, B;
  A.write(Arr, at(1), true);
  B.read(Arr, at(2));
  std::string Why;
  EXPECT_TRUE(provablyDisjoint(A.MayWrite, B.MayRead, &Why))
      << "distinct array slots are disjoint";
  Effects C, D;
  C.write(Cell, at(0), true);
  D.read(Cell, at(0));
  EXPECT_FALSE(provablyDisjoint(C.MayWrite, D.MayRead, &Why));
  EXPECT_NE(Why.find("cell"), std::string::npos);
}

TEST_F(EffectsTest, SubstituteShiftsSymbolicIntervals) {
  Effects E;
  E.write(Arr, atVar(), true);
  Effects Shifted = E.substitute(&I, SymExpr::variable(&I) +
                                         SymExpr::constant(1));
  std::string Why;
  EXPECT_TRUE(provablyDisjoint(E.MayWrite, Shifted.MayWrite, &Why))
      << "arr[i] vs arr[i+1]";
  EXPECT_TRUE(Shifted.MustWrite.covers(
      Arr, SymInterval::point(SymExpr::variable(&I) + SymExpr::constant(1))));
}

TEST_F(EffectsTest, MustSetCoverageIsPerInterval) {
  MustSet M;
  M.add(Arr, SymInterval::of(SymExpr::constant(0), SymExpr::constant(3)));
  M.add(Arr, SymInterval::of(SymExpr::constant(10), SymExpr::constant(12)));
  EXPECT_TRUE(M.covers(Arr, at(2)));
  EXPECT_TRUE(M.covers(Arr, at(11)));
  EXPECT_FALSE(M.covers(Arr, at(5)));
  EXPECT_FALSE(M.covers(Arr, SymInterval::of(SymExpr::constant(2),
                                             SymExpr::constant(11))))
      << "coverage is per-interval, not across the union";
}

TEST_F(EffectsTest, AccessSetHullsPerNode) {
  AccessSet S;
  S.add(Arr, at(1));
  S.add(Arr, at(5));
  ASSERT_EQ(S.Map.size(), 1u);
  EXPECT_TRUE(SymInterval::mustContain(S.Map.begin()->second, at(3)))
      << "per-node accesses keep a convex hull";
}

} // namespace
