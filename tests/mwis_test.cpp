//===- tests/mwis_test.cpp - MWIS solver tests ----------------------------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//

#include "mwis/Mwis.h"
#include "support/Rng.h"
#include "workloads/Datasets.h"

#include <gtest/gtest.h>

using namespace specpar;
using namespace specpar::mwis;
using namespace specpar::workloads;

namespace {

/// Exponential brute force over all independent sets; the ground-truth
/// oracle for small instances.
int64_t bruteForce(const std::vector<int64_t> &W) {
  size_t N = W.size();
  EXPECT_LE(N, 20u);
  int64_t Best = 0;
  for (uint32_t Mask = 0; Mask < (1u << N); ++Mask) {
    if (Mask & (Mask << 1))
      continue; // adjacent nodes
    int64_t Sum = 0;
    for (size_t I = 0; I < N; ++I)
      if (Mask & (1u << I))
        Sum += W[I];
    Best = std::max(Best, Sum);
  }
  return Best;
}

bool isIndependent(const std::vector<int32_t> &Members) {
  for (size_t I = 1; I < Members.size(); ++I)
    if (Members[I] == Members[I - 1] + 1)
      return false;
  return true;
}

int64_t memberWeight(const std::vector<int64_t> &W,
                     const std::vector<int32_t> &Members) {
  int64_t Sum = 0;
  for (int32_t M : Members)
    Sum += W[M];
  return Sum;
}

TEST(Mwis, EmptyAndSingleton) {
  std::vector<int32_t> M;
  EXPECT_EQ(solveSequential({}, &M), 0);
  EXPECT_TRUE(M.empty());
  EXPECT_EQ(solveSequential({7}, &M), 7);
  EXPECT_EQ(M, std::vector<int32_t>{0});
  EXPECT_EQ(solveSequential({0}, &M), 0);
  EXPECT_TRUE(M.empty()) << "zero-weight nodes are excluded on ties";
}

TEST(Mwis, SmallHandCases) {
  EXPECT_EQ(solveSequential({5, 1, 5}, nullptr), 10);
  EXPECT_EQ(solveSequential({1, 5, 1}, nullptr), 5);
  EXPECT_EQ(solveSequential({2, 2, 2, 2}, nullptr), 4);
  std::vector<int32_t> M;
  EXPECT_EQ(solveSequential({5, 1, 5}, &M), 10);
  EXPECT_EQ(M, (std::vector<int32_t>{0, 2}));
}

class MwisRandom : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MwisRandom, DpMatchesBruteForce) {
  Rng R(GetParam());
  for (int Trial = 0; Trial < 50; ++Trial) {
    size_t N = R.nextBelow(15);
    std::vector<int64_t> W(N);
    for (int64_t &V : W)
      V = R.nextInRange(0, 50);
    std::vector<int32_t> Members;
    int64_t Best = solveSequential(W, &Members);
    EXPECT_EQ(Best, bruteForce(W));
    EXPECT_TRUE(isIndependent(Members));
    EXPECT_EQ(memberWeight(W, Members), Best)
        << "the reported member set must realize the optimal weight";
  }
}

TEST_P(MwisRandom, TwoPhaseMatchesSequential) {
  Rng R(GetParam() ^ 0x5555);
  for (int Trial = 0; Trial < 30; ++Trial) {
    size_t N = R.nextBelow(2000);
    std::vector<int64_t> W(N);
    for (int64_t &V : W)
      V = R.nextInRange(0, R.nextBool(0.5) ? 50 : 5000);
    std::vector<int32_t> MSeq, MTwo;
    int64_t BSeq = solveSequential(W, &MSeq);
    int64_t BTwo = solveTwoPhase(W, &MTwo);
    EXPECT_EQ(BSeq, BTwo);
    EXPECT_EQ(MSeq, MTwo) << "canonical tie-breaking must agree";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MwisRandom,
                         ::testing::Values(11, 22, 33, 44, 55));

/// Segmenting the forward pass with true carried values reproduces the
/// single-segment d array, for every segmentation.
TEST(Mwis, ForwardSegmentComposition) {
  std::vector<int64_t> W = generatePathGraph(3, 500, 50);
  std::vector<int64_t> Whole(W.size());
  forwardSegment(W, 0, 500, 0, Whole);
  for (int NumSegs : {2, 3, 7, 10}) {
    std::vector<int64_t> D(W.size());
    int64_t Carried = 0;
    for (int S = 0; S < NumSegs; ++S) {
      int64_t From = 500 * S / NumSegs, To = 500 * (S + 1) / NumSegs;
      Carried = forwardSegment(W, From, To, Carried, D);
    }
    EXPECT_EQ(D, Whole) << NumSegs << " segments";
  }
}

TEST(Mwis, BackwardSegmentComposition) {
  std::vector<int64_t> W = generatePathGraph(4, 400, 5000);
  std::vector<int64_t> D(W.size());
  forwardSegment(W, 0, 400, 0, D);
  std::vector<uint8_t> Whole(W.size());
  backwardSegment(D, 0, 400, false, Whole);
  for (int NumSegs : {2, 5, 8}) {
    std::vector<uint8_t> Taken(W.size());
    bool Carried = false;
    for (int S = NumSegs - 1; S >= 0; --S) {
      int64_t From = 400 * S / NumSegs, To = 400 * (S + 1) / NumSegs;
      Carried = backwardSegment(D, From, To, Carried, Taken);
    }
    EXPECT_EQ(Taken, Whole) << NumSegs << " segments";
  }
}

TEST(Mwis, EmptySegmentsPassCarriedValueThrough) {
  std::vector<int64_t> W = {3, 1, 4};
  std::vector<int64_t> D(3);
  EXPECT_EQ(forwardSegment(W, 1, 1, 42, D), 42);
  std::vector<uint8_t> T(3);
  EXPECT_TRUE(backwardSegment(D, 2, 2, true, T));
}

/// Prediction-accuracy behaviour of the d-recurrence predictor. Unlike the
/// paper's prediction function (flat 38% on uni-5000; see EXPERIMENTS.md),
/// a windowed prediction of the d recurrence *merges* with the true
/// trajectory as soon as both values are non-positive at the same index,
/// which happens quickly for any weight scale. So accuracy rises with
/// overlap for both uni-50 and uni-5000, and zero overlap predicts nothing.
TEST(Mwis, PredictionAccuracyRisesWithOverlapForBothWeightRanges) {
  auto AccuracyAt = [](int64_t MaxW, int64_t Overlap) {
    std::vector<int64_t> W = generatePathGraph(1234, 200000, MaxW);
    std::vector<int64_t> D(W.size());
    forwardSegment(W, 0, static_cast<int64_t>(W.size()), 0, D);
    int NumPoints = 32, Correct = 0;
    for (int I = 1; I < NumPoints; ++I) {
      int64_t Boundary = static_cast<int64_t>(W.size()) * I / NumPoints;
      int64_t Truth = D[Boundary - 1];
      if (predictForward(W, Boundary, Overlap) == Truth)
        ++Correct;
    }
    return 100.0 * Correct / (NumPoints - 1);
  };
  for (int64_t MaxW : {int64_t(50), int64_t(5000)}) {
    double AtZero = AccuracyAt(MaxW, 0);
    double AtSmall = AccuracyAt(MaxW, 4);
    double AtLarge = AccuracyAt(MaxW, 32);
    EXPECT_LE(AtZero, 20.0) << "maxW=" << MaxW;
    EXPECT_LE(AtSmall, AtLarge) << "maxW=" << MaxW;
    EXPECT_GE(AtLarge, 85.0) << "maxW=" << MaxW;
  }
}

} // namespace
