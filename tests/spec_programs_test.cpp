//===- tests/spec_programs_test.cpp - Benchmark .spec program tests --------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// End-to-end validation of the three Speculate benchmark programs used by
/// the Figure 9 experiment: they parse, the rollback-freedom checker
/// verifies them (as the paper verified its benchmarks), and speculative
/// executions agree with the non-speculative semantics.
///
//===----------------------------------------------------------------------===//

#include "analysis/RollbackChecker.h"
#include "interp/NonSpecEval.h"
#include "interp/SpecMachine.h"
#include "lang/Parser.h"
#include "lang/Printer.h"
#include "support/StringUtils.h"
#include "trace/Equivalence.h"

#include <gtest/gtest.h>

using namespace specpar;

namespace {

std::unique_ptr<lang::Program> load(const std::string &Name) {
  std::string Path = std::string(SPECPAR_SPEC_DIR) + "/" + Name;
  std::string Source;
  EXPECT_TRUE(readFileToString(Path, Source)) << Path;
  auto R = lang::parseProgram(Source);
  EXPECT_TRUE(bool(R)) << Name << ": " << R.error();
  return R ? R.take() : nullptr;
}

class BenchmarkSpecPrograms : public ::testing::TestWithParam<const char *> {
};

TEST_P(BenchmarkSpecPrograms, ParsesAndHasRealSize) {
  auto P = load(GetParam());
  ASSERT_NE(P, nullptr);
  EXPECT_GE(P->Funs.size(), 5u) << "Figure 9 counts functions";
  EXPECT_GE(lang::countNodes(*P), 150);
}

TEST_P(BenchmarkSpecPrograms, CheckerVerifiesRollbackFreedom) {
  auto P = load(GetParam());
  ASSERT_NE(P, nullptr);
  analysis::AnalysisReport R = analysis::checkRollbackFreedom(*P);
  EXPECT_TRUE(R.programSafe()) << GetParam() << ":\n" << R.str();
}

TEST_P(BenchmarkSpecPrograms, SpeculativeRunsMatchNonSpeculative) {
  auto P = load(GetParam());
  ASSERT_NE(P, nullptr);
  interp::RunOutcome N = interp::runNonSpeculative(*P);
  ASSERT_TRUE(N.ok()) << N.statusStr();
  ASSERT_TRUE(N.Result.isInt());
  for (uint64_t Seed = 1; Seed <= 3; ++Seed) {
    interp::MachineOptions MO;
    MO.Seed = Seed;
    MO.MaxSteps = 30000000;
    interp::SpecRunOutcome S = interp::runSpeculative(*P, MO);
    ASSERT_TRUE(S.ok()) << S.statusStr();
    EXPECT_EQ(S.Result.asInt(), N.Result.asInt()) << "seed " << Seed;
    tr::EquivResult Fin = tr::checkFinalStateEquivalent(N.Final, S.Final);
    EXPECT_TRUE(Fin.ok()) << Fin.Explanation;
    EXPECT_GT(S.ThreadsSpawned, 0u);
    if (Seed == 1) {
      // The stronger criterion once per program (the traces run to a few
      // thousand events; the embedding search stays fast because
      // locations are mostly distinct).
      tr::EquivResult Dep = tr::checkDependenceEquivalent(N.Trace, S.Trace);
      EXPECT_NE(Dep.Status, tr::EquivStatus::NotEquivalent)
          << Dep.Explanation;
    }
  }
}

TEST_P(BenchmarkSpecPrograms, PrintRoundTripPreservesMeaningAndSafety) {
  auto P = load(GetParam());
  ASSERT_NE(P, nullptr);
  std::string Printed = lang::printProgram(*P);
  auto PR2 = lang::parseProgram(Printed);
  ASSERT_TRUE(bool(PR2)) << PR2.error();
  // The reprinted program still verifies and computes the same result.
  EXPECT_TRUE(analysis::checkRollbackFreedom(**PR2).programSafe());
  interp::RunOutcome A = interp::runNonSpeculative(*P);
  interp::RunOutcome B = interp::runNonSpeculative(**PR2);
  ASSERT_TRUE(A.ok() && B.ok());
  EXPECT_EQ(A.Result.asInt(), B.Result.asInt());
  EXPECT_EQ(A.Steps, B.Steps);
}

INSTANTIATE_TEST_SUITE_P(Files, BenchmarkSpecPrograms,
                         ::testing::Values("lexing.spec", "huffman.spec",
                                           "mwis.spec"));

} // namespace
