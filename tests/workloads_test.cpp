//===- tests/workloads_test.cpp - Dataset generator tests -----------------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//

#include "lexgen/Languages.h"
#include "workloads/Datasets.h"
#include "workloads/SourceGen.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace specpar;
using namespace specpar::workloads;
using namespace specpar::lexgen;

namespace {

double byteEntropy(const std::vector<uint8_t> &Data) {
  std::array<double, 256> Freq{};
  for (uint8_t B : Data)
    Freq[B] += 1;
  double H = 0;
  for (double F : Freq) {
    if (F == 0)
      continue;
    double P = F / static_cast<double>(Data.size());
    H -= P * std::log2(P);
  }
  return H;
}

TEST(Datasets, GeneratorsAreDeterministic) {
  for (HuffmanFlavour F : AllHuffmanFlavours) {
    auto A = generateHuffmanData(F, 42, 4096);
    auto B = generateHuffmanData(F, 42, 4096);
    EXPECT_EQ(A, B);
    auto C = generateHuffmanData(F, 43, 4096);
    EXPECT_NE(A, C);
    EXPECT_EQ(A.size(), 4096u);
  }
}

TEST(Datasets, FlavourEntropyOrdering) {
  // media (mp3-like) must have the highest byte entropy, rawdata and text
  // substantially lower — the property that drives their different Huffman
  // compressibility and self-sync speed.
  auto Media = generateHuffmanData(HuffmanFlavour::Media, 1, 1 << 16);
  auto Raw = generateHuffmanData(HuffmanFlavour::RawData, 1, 1 << 16);
  auto Text = generateHuffmanData(HuffmanFlavour::Text, 1, 1 << 16);
  double HMedia = byteEntropy(Media), HRaw = byteEntropy(Raw),
         HText = byteEntropy(Text);
  EXPECT_GT(HMedia, 6.5);
  EXPECT_LT(HRaw, HMedia);
  EXPECT_LT(HText, HMedia);
  EXPECT_GT(HText, 3.0);
}

TEST(Datasets, PathGraphRespectsRange) {
  std::vector<int64_t> W = generatePathGraph(7, 10000, 50);
  ASSERT_EQ(W.size(), 10000u);
  int64_t Max = 0;
  for (int64_t V : W) {
    EXPECT_GE(V, 0);
    EXPECT_LE(V, 50);
    Max = std::max(Max, V);
  }
  EXPECT_GT(Max, 40) << "the full weight range should be exercised";
}

TEST(Datasets, TextCorpusLooksLikeText) {
  std::string T = generateTextCorpus(5, 10000);
  EXPECT_EQ(T.size(), 10000u);
  EXPECT_NE(T.find(". "), std::string::npos);
  EXPECT_NE(T.find("\n\n"), std::string::npos);
  EXPECT_NE(T.find("the"), std::string::npos);
}

class SourceGenLexes : public ::testing::TestWithParam<Language> {};

TEST_P(SourceGenLexes, GeneratedSourceLexesCleanly) {
  Language L = GetParam();
  Lexer LX = makeLexer(L);
  std::string Src = generateSource(L, 77, 60000);
  EXPECT_GE(Src.size(), 59000u);
  std::vector<Token> Toks = LX.lexAll(Src);
  EXPECT_GT(Toks.size(), 100u);
  size_t Errors = 0;
  for (const Token &T : Toks)
    if (T.Rule == NoRule)
      ++Errors;
  EXPECT_EQ(Errors, 0u) << "generated " << languageName(L)
                        << " must lex without error tokens";
}

TEST_P(SourceGenLexes, DeterministicPerSeed) {
  Language L = GetParam();
  EXPECT_EQ(generateSource(L, 9, 5000), generateSource(L, 9, 5000));
  EXPECT_NE(generateSource(L, 9, 5000), generateSource(L, 10, 5000));
}

INSTANTIATE_TEST_SUITE_P(AllLangs, SourceGenLexes,
                         ::testing::ValuesIn(AllLanguages));

TEST(SourceGen, HtmlHasLongTokensJavaShortOnes) {
  // The structural property behind the paper's accuracy ordering: HTML's
  // longest token dwarfs Java's.
  Lexer HtmlLexer = makeLexer(Language::Html);
  Lexer JavaLexer = makeLexer(Language::Java);
  std::string Html = generateSource(Language::Html, 3, 40000);
  std::string Java = generateSource(Language::Java, 3, 40000);
  auto MaxTokenLen = [](const std::vector<Token> &Toks) {
    int64_t Max = 0;
    for (const Token &T : Toks)
      Max = std::max(Max, T.End - T.Start);
    return Max;
  };
  int64_t HtmlMax = MaxTokenLen(HtmlLexer.lexAll(Html));
  int64_t JavaMax = MaxTokenLen(JavaLexer.lexAll(Java));
  EXPECT_GT(HtmlMax, 256);
  EXPECT_LT(JavaMax, 128);
}

} // namespace
