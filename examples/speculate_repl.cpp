//===- examples/speculate_repl.cpp - The whole Speculate pipeline ---------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Runs a .spec program through the entire Section 2-5 pipeline:
///
///   speculate_repl <file.spec> [--seed N] [--sched random|rr|prio]
///                  [--trace] [--no-spec] [--compile]
///
/// It parses and resolves the program, runs the rollback-freedom checker,
/// executes the non-speculative semantics, executes the speculative
/// semantics, and reports result agreement and final-state/dependence
/// equivalence. With --compile it additionally runs the program through
/// the native compiler's admission gate (src/compile/), prints the full
/// per-node lowering report, and times the compiled execution against
/// the interpreted one.
///
//===----------------------------------------------------------------------===//

#include "analysis/RollbackChecker.h"
#include "compile/RunSpeculate.h"
#include "interp/NonSpecEval.h"
#include "interp/SpecMachine.h"
#include "lang/Parser.h"
#include "lang/Printer.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "support/Timer.h"
#include "trace/Equivalence.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace specpar;

int main(int Argc, char **Argv) {
  ArgParser Args("speculate_repl",
                 "Runs a .spec program through the full pipeline: parse, "
                 "rollback-freedom check, both semantics, equivalence.");
  std::string *Path = Args.positional("file.spec", "the program to run");
  int64_t *Seed = Args.intOption("seed", 1, "speculative scheduler seed");
  std::string *SchedName =
      Args.strOption("sched", "random", "scheduler: random|rr|prio");
  bool *ShowTracePtr = Args.flag("trace", "print the recorded traces");
  bool *ShowDotPtr =
      Args.flag("dot", "print the abstract heap graph (paper Figure 5)");
  bool *ShowStatePtr =
      Args.flag("state", "print the final heap state of each run");
  bool *NoSpecPtr = Args.flag("no-spec",
                              "stop after the non-speculative run");
  bool *CompilePtr = Args.flag(
      "compile", "run the native compiler's admission gate, print the "
                 "lowering report, and time compiled vs interpreted");
  int64_t *Threads =
      Args.intOption("threads", 4, "compiled-path executor threads");
  if (!Args.parse(Argc, Argv))
    return Args.helpRequested() ? 0 : 2;
  bool ShowTrace = *ShowTracePtr;
  bool ShowDot = *ShowDotPtr;
  bool RunSpec = !*NoSpecPtr;
  interp::SchedulerKind Sched =
      *SchedName == "rr"     ? interp::SchedulerKind::RoundRobin
      : *SchedName == "prio" ? interp::SchedulerKind::NonSpecPriority
                             : interp::SchedulerKind::Random;

  std::string Source;
  if (!readFileToString(*Path, Source)) {
    std::fprintf(stderr, "error: cannot read %s\n", Path->c_str());
    return 2;
  }
  auto PR = lang::parseProgram(Source);
  if (!PR) {
    std::fprintf(stderr, "parse error: %s\n", PR.error().c_str());
    return 1;
  }
  const lang::Program &P = **PR;
  std::printf("parsed %zu function(s), %lld AST nodes\n", P.Funs.size(),
              static_cast<long long>(lang::countNodes(P)));

  // Static rollback-freedom check (paper Section 5).
  Timer CheckTimer;
  analysis::AnalysisReport Report = analysis::checkRollbackFreedom(P);
  std::printf("--- static analysis (%.3f ms) ---\n%s",
              CheckTimer.elapsedMillis(), Report.str().c_str());
  for (const analysis::SiteReport &SR : Report.Sites)
    if (!SR.ProducerEffects.empty())
      std::printf("  at %d:%d  producer: %s\n            consumer: %s\n",
                  SR.Site->loc().Line, SR.Site->loc().Col,
                  SR.ProducerEffects.c_str(), SR.ConsumerEffects.c_str());
  if (ShowDot)
    std::printf("--- abstract heap graph (paper Figure 5) ---\n%s",
                Report.HeapGraphDot.c_str());

  // Non-speculative semantics (the specification).
  interp::RunOutcome N = interp::runNonSpeculative(P);
  if (!N.ok()) {
    std::printf("non-speculative run: %s\n", N.statusStr().c_str());
    return 1;
  }
  std::printf("--- non-speculative ---\nresult = %s, %llu steps, %zu "
              "interesting transitions\n",
              N.Result.str().c_str(),
              static_cast<unsigned long long>(N.Steps),
              N.Trace.Events.size());
  if (ShowTrace)
    std::printf("%s", N.Trace.str().c_str());
  if (*ShowStatePtr)
    std::printf("%s", N.Final.str().c_str());

  // The native compiler: admission verdict, per-node lowering report,
  // and an interpreted-vs-compiled timing comparison.
  if (*CompilePtr) {
    std::printf("--- native compilation (src/compile) ---\n");
    Timer CompileTimer;
    compile::AdmissionReport Rep;
    auto Compiled = compile::compileProgram(P, compile::CompileOptions(),
                                            &Rep);
    std::printf("%s(compiled in %.3f ms)\n", Rep.str().c_str(),
                CompileTimer.elapsedMillis());
    if (Compiled) {
      // Interpreted timing: one reference SpecMachine run.
      interp::MachineOptions MO;
      MO.Seed = static_cast<uint64_t>(*Seed);
      MO.Sched = Sched;
      Timer InterpTimer;
      interp::SpecRunOutcome SI = interp::runSpeculative(P, MO);
      double InterpMs = InterpTimer.elapsedMillis();
      // Compiled timing: same program on the native runtime.
      compile::CompiledProgram::RunOptions RO;
      RO.Config.threads(static_cast<unsigned>(*Threads));
      Timer RunTimer;
      compile::CompiledProgram::Outcome O = (*Compiled)->run(RO);
      double CompiledMs = RunTimer.elapsedMillis();
      if (!O.Run.ok()) {
        std::printf("compiled run: %s: %s\n", O.Run.statusStr().c_str(),
                    O.Run.Error.Message.c_str());
        return 1;
      }
      std::printf("compiled result = %s (%s the non-speculative result)\n",
                  O.Run.Result.str().c_str(),
                  O.Run.Result.isInt() && N.Result.isInt() &&
                          O.Run.Result.asInt() == N.Result.asInt()
                      ? "matches"
                      : "DOES NOT MATCH");
      std::printf("compiled: %.3f ms (~%llu steps), %lld tasks, %lld "
                  "predictions, %lld mispredictions, %lld re-executions\n",
                  CompiledMs,
                  static_cast<unsigned long long>(O.Run.Steps),
                  static_cast<long long>(O.Stats.Tasks),
                  static_cast<long long>(O.Stats.Predictions),
                  static_cast<long long>(O.Stats.Mispredictions),
                  static_cast<long long>(O.Stats.Reexecutions));
      std::printf("interpreted: %.3f ms (%llu steps)  ->  speedup %.1fx\n",
                  InterpMs, static_cast<unsigned long long>(SI.Steps),
                  CompiledMs > 0 ? InterpMs / CompiledMs : 0.0);
    } else {
      std::printf("falling back to the interpreter: %s\n",
                  Compiled.error().c_str());
    }
  }

  if (!RunSpec)
    return 0;

  // Speculative semantics.
  interp::MachineOptions MO;
  MO.Seed = static_cast<uint64_t>(*Seed);
  MO.Sched = Sched;
  interp::SpecRunOutcome S = interp::runSpeculative(P, MO);
  if (!S.ok()) {
    std::printf("speculative run: %s\n", S.statusStr().c_str());
    return 1;
  }
  std::printf("--- speculative (seed %llu) ---\n"
              "result = %s, %llu steps, %llu threads, %llu predictions, "
              "%llu mispredictions, %llu cancellations\n",
              static_cast<unsigned long long>(*Seed), S.Result.str().c_str(),
              static_cast<unsigned long long>(S.Steps),
              static_cast<unsigned long long>(S.ThreadsSpawned),
              static_cast<unsigned long long>(S.Predictions),
              static_cast<unsigned long long>(S.Mispredictions),
              static_cast<unsigned long long>(S.Cancellations));
  if (ShowTrace)
    std::printf("%s", S.Trace.str().c_str());
  if (*ShowStatePtr)
    std::printf("%s", S.Final.str().c_str());

  // Equivalence (paper Section 3.1).
  tr::EquivResult Fin = tr::checkFinalStateEquivalent(N.Final, S.Final);
  std::printf("final-state equivalent: %s%s\n", Fin.ok() ? "yes" : "NO",
              Fin.ok() ? "" : (" — " + Fin.Explanation).c_str());
  tr::EquivResult Dep = tr::checkDependenceEquivalent(N.Trace, S.Trace);
  const char *DepStr =
      Dep.Status == tr::EquivStatus::Equivalent
          ? "yes"
          : (Dep.Status == tr::EquivStatus::ResourceLimit ? "unknown (budget)"
                                                          : "NO");
  std::printf("dependence equivalent: %s%s\n", DepStr,
              Dep.ok() || Dep.Status == tr::EquivStatus::ResourceLimit
                  ? ""
                  : (" — " + Dep.Explanation).c_str());
  return Fin.ok() ? 0 : 1;
}
