//===- examples/speculative_lexing.cpp - Paper Figure 4, runnable ---------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The paper's flagship scenario (Figure 4): lift a sequential range
/// lexer to a speculatively parallel one. Generates a source file for a
/// chosen language, lexes it sequentially and speculatively with several
/// overlap sizes, and prints token counts, prediction accuracy, and
/// runtime statistics.
///
///   speculative_lexing [c|java|html|latex] [bytes]
///
//===----------------------------------------------------------------------===//

#include "apps/SpeculativeLexing.h"
#include "lexgen/Languages.h"
#include "support/Timer.h"
#include "workloads/SourceGen.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace specpar;
using namespace specpar::apps;
using namespace specpar::lexgen;

int main(int Argc, char **Argv) {
  Language Lang = Language::Latex;
  if (Argc > 1) {
    std::string A = Argv[1];
    Lang = A == "c"      ? Language::C
           : A == "java" ? Language::Java
           : A == "html" ? Language::Html
                         : Language::Latex;
  }
  size_t Bytes = Argc > 2 ? std::strtoull(Argv[2], nullptr, 10) : 200000;

  std::printf("generating %zu bytes of %s...\n", Bytes, languageName(Lang));
  std::string Text = workloads::generateSource(Lang, 42, Bytes);
  Lexer LX = makeLexer(Lang);
  std::printf("lexer FSM: %u DFA states, %zu rules\n", LX.numDfaStates(),
              LX.rules().size());

  Timer T;
  std::vector<Token> Seq = sequentialLex(LX, Text);
  double SeqSeconds = T.elapsedSeconds();
  std::printf("sequential: %zu tokens in %.3f ms\n\n", Seq.size(),
              SeqSeconds * 1e3);

  const int NumTasks = 8;
  // Hold the default shard's handle and name it explicitly: the run's
  // executor activity (steals, help-runs, queue pressure) lands in
  // Run.Stats.Exec, and the ownership is visible at the call site.
  std::shared_ptr<rt::SpecExecutor> Shard = rt::SpecExecutor::defaultShard();
  for (int64_t Overlap : {0, 16, 64, 256, 1024}) {
    rt::SpecConfig Cfg = rt::SpecConfig().executor(Shard);
    T.reset();
    LexRun Run = speculativeLex(LX, Text, NumTasks, Overlap, Cfg);
    double Seconds = T.elapsedSeconds();
    double Accuracy = lexPredictionAccuracy(LX, Text, Overlap);
    bool Match = Run.Tokens == Seq;
    std::printf("overlap %5lld: accuracy %5.1f%%  %s  tokens %s  "
                "(%.3f ms)\n"
                "              executor: %s\n",
                static_cast<long long>(Overlap), Accuracy,
                Run.Stats.Spec.str().c_str(), Match ? "match" : "MISMATCH",
                Seconds * 1e3, Run.Stats.Exec.str().c_str());
    if (!Match)
      return 1;
  }
  std::printf("\nall speculative runs produced the sequential token "
              "stream.\n");
  return 0;
}
