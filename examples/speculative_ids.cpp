//===- examples/speculative_ids.cpp - Speculative pattern matching --------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// A fourth application domain from the paper's introduction/related work:
/// speculative multi-pattern matching in an intrusion-detection system
/// (Luchaup et al., RAID 2009, cited by the paper). The signature set is
/// compiled into one DFA (reusing the lexgen substrate); scanning a
/// payload is a sequential FSM walk whose loop-carried value is the DFA
/// state. Segments are scanned speculatively with *hot-state prediction*:
/// in IDS workloads the automaton is almost always in or near its start
/// state, so predicting the state at a segment boundary by replaying a
/// small overlap from the start state is usually right.
///
///   speculative_ids [bytes]
///
//===----------------------------------------------------------------------===//

#include "lexgen/Lexer.h"
#include "runtime/Speculation.h"
#include "support/Rng.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace specpar;
using namespace specpar::lexgen;

namespace {

/// Signature rules: classic toy attack strings plus noise-tolerant
/// patterns. Matching is "alert when any rule's pattern occurs".
Lexer makeSignatureMatcher() {
  Result<Lexer> L = Lexer::compile({
      {"shell", "/bin/sh", false},
      {"traversal", "\\.\\./\\.\\./", false},
      {"sqli", "' *[oO][rR] *'1' *= *'1", false},
      {"xss", "<script[^>]*>", false},
      {"overflow", "%n%n%n+", false},
      // The "everything else" rule keeps the scan total: any byte.
      {"noise", ".|\n", true},
  });
  if (!L) {
    std::fprintf(stderr, "signature set failed to compile: %s\n",
                 L.error().c_str());
    std::abort();
  }
  return L.take();
}

/// Synthetic traffic: mostly noise, a few embedded attacks.
std::string makeTraffic(uint64_t Seed, size_t Bytes) {
  Rng R(Seed);
  std::string T;
  T.reserve(Bytes + 64);
  const char *Attacks[] = {"/bin/sh", "../../", "' or '1'='1",
                           "<script src=x>", "%n%n%n%n"};
  while (T.size() < Bytes) {
    if (R.nextBool(0.001)) {
      T += Attacks[R.nextBelow(5)];
      continue;
    }
    // Printable noise with occasional separators.
    char C = static_cast<char>('a' + R.nextBelow(26));
    if (R.nextBool(0.12))
      C = ' ';
    else if (R.nextBool(0.02))
      C = '\n';
    T += C;
  }
  T.resize(Bytes);
  return T;
}

/// Alerts are the non-noise tokens.
size_t countAlerts(const Lexer &L, const std::vector<Token> &Tokens) {
  size_t Alerts = 0;
  for (const Token &T : Tokens)
    if (T.Rule != NoRule && !L.rules()[T.Rule].Skip)
      ++Alerts;
  return Alerts;
}

} // namespace

int main(int Argc, char **Argv) {
  size_t Bytes = Argc > 1 ? std::strtoull(Argv[1], nullptr, 10) : 1000000;
  Lexer Matcher = makeSignatureMatcher();
  std::printf("signature DFA: %u states, %zu rules\n",
              Matcher.numDfaStates(), Matcher.rules().size());
  std::string Traffic = makeTraffic(1337, Bytes);

  Timer T;
  std::vector<Token> Seq = Matcher.lexAll(Traffic);
  size_t SeqAlerts = countAlerts(Matcher, Seq);
  std::printf("sequential scan: %zu alerts in %.3f ms\n\n", SeqAlerts,
              T.elapsedMillis());

  // Chunked speculation on the shared process-wide executor: the stream
  // is cut into NumTasks * ChunkSize sub-ranges, each speculative task
  // scans one chunk of ChunkSize sub-ranges sequentially, and the DFA
  // state is predicted once per chunk.
  const int NumTasks = 8;
  const int64_t ChunkSize = 8;
  const int64_t N = static_cast<int64_t>(Traffic.size());
  const int64_t NumSub = NumTasks * ChunkSize;
  auto Bound = [&](int64_t I) { return N * I / NumSub; };
  for (int64_t Overlap : {0, 8, 32, 128}) {
    std::vector<Token> Tokens;
    T.reset();
    rt::SpecResult<LexState> Scan =
        rt::Speculation::iterateChunkedLocal<LexState, std::vector<Token>>(
            0, NumSub, ChunkSize, [] { return std::vector<Token>(); },
            [&](int64_t I, std::vector<Token> &Local, LexState In) {
              return Matcher.lexRange(Traffic, Bound(I), Bound(I + 1), In,
                                      &Local);
            },
            // Hot-state prediction: replay a short overlap from the start
            // state; with Overlap == 0 this is the pure "assume the
            // automaton is in its hot start state" guess.
            [&](int64_t I) {
              return I == 0
                         ? Matcher.initialState(0)
                         : Matcher.predictStateAt(Traffic, Bound(I), Overlap);
            },
            [&Tokens](int64_t, std::vector<Token> &Local) {
              Tokens.insert(Tokens.end(), Local.begin(), Local.end());
            });
    Matcher.finishLex(Traffic, Scan.Value, &Tokens);
    size_t Alerts = countAlerts(Matcher, Tokens);
    bool Match = Tokens == Seq;
    std::printf("overlap %4lld: %zu alerts  %s  %s  (%.3f ms)\n",
                static_cast<long long>(Overlap), Alerts,
                Scan.Stats.str().c_str(), Match ? "match" : "MISMATCH",
                T.elapsedMillis());
    if (!Match)
      return 1;
  }
  std::printf("\nall speculative scans raised exactly the sequential "
              "alerts.\n");
  return 0;
}
