//===- examples/speculative_mwis.cpp - Two-phase speculative MWIS ---------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The paper's dynamic-programming benchmark: maximum-weight independent
/// set of a path graph, in two speculative phases (forward d-recurrence,
/// backward member emission).
///
///   speculative_mwis [maxWeight] [nodes]
///
//===----------------------------------------------------------------------===//

#include "apps/SpeculativeMwis.h"
#include "support/Timer.h"
#include "workloads/Datasets.h"

#include <cstdio>
#include <cstdlib>

using namespace specpar;
using namespace specpar::apps;
using namespace specpar::workloads;

int main(int Argc, char **Argv) {
  int64_t MaxW = Argc > 1 ? std::strtoll(Argv[1], nullptr, 10) : 50;
  size_t Nodes = Argc > 2 ? std::strtoull(Argv[2], nullptr, 10) : 2000000;

  std::printf("path graph: %zu nodes, weights uniform in [0, %lld] "
              "(the paper's uni-%lld dataset)\n",
              Nodes, static_cast<long long>(MaxW),
              static_cast<long long>(MaxW));
  std::vector<int64_t> W = generatePathGraph(3, Nodes, MaxW);

  Timer T;
  std::vector<int32_t> SeqMembers;
  int64_t SeqWeight = mwis::solveSequential(W, &SeqMembers);
  std::printf("sequential DP: weight %lld, %zu members, %.3f ms\n\n",
              static_cast<long long>(SeqWeight), SeqMembers.size(),
              T.elapsedMillis());

  const int NumTasks = 8;
  // Name the default shard explicitly: the run's executor activity
  // (steals, help-runs, queue pressure) lands in Run.Stats.Exec.
  std::shared_ptr<rt::SpecExecutor> Shard = rt::SpecExecutor::defaultShard();
  for (int64_t Overlap : {0, 8, 16, 32, 128}) {
    rt::SpecConfig Cfg = rt::SpecConfig().executor(Shard);
    T.reset();
    MwisRun Run = speculativeMwis(W, NumTasks, Overlap, Cfg);
    double Seconds = T.elapsedSeconds();
    double Accuracy = mwisPredictionAccuracy(W, Overlap);
    bool Match = Run.Weight == SeqWeight && Run.Members == SeqMembers;
    std::printf("overlap %4lld: accuracy %5.1f%%  fwd[%s]  bwd[%s]  %s  "
                "(%.3f ms)\n"
                "              executor: %s\n",
                static_cast<long long>(Overlap), Accuracy,
                Run.ForwardStats.str().c_str(),
                Run.BackwardStats.str().c_str(),
                Match ? "match" : "MISMATCH", Seconds * 1e3,
                Run.Stats.Exec.str().c_str());
    if (!Match)
      return 1;
  }
  std::printf("\nall speculative runs found the optimal independent "
              "set.\n");
  return 0;
}
