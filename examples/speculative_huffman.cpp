//===- examples/speculative_huffman.cpp - Segmented Huffman decode --------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Speculative Huffman decoding over the paper's three dataset flavours:
/// encode a generated dataset, split the bit stream into segments, and
/// decode the segments in parallel with overlap-predicted
/// synchronization points.
///
///   speculative_huffman [media|rawdata|text] [bytes]
///
//===----------------------------------------------------------------------===//

#include "apps/SpeculativeHuffman.h"
#include "support/Timer.h"
#include "workloads/Datasets.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace specpar;
using namespace specpar::apps;
using namespace specpar::huffman;
using namespace specpar::workloads;

int main(int Argc, char **Argv) {
  HuffmanFlavour Flavour = HuffmanFlavour::Text;
  if (Argc > 1) {
    std::string A = Argv[1];
    Flavour = A == "media"     ? HuffmanFlavour::Media
              : A == "rawdata" ? HuffmanFlavour::RawData
                               : HuffmanFlavour::Text;
  }
  size_t Bytes = Argc > 2 ? std::strtoull(Argv[2], nullptr, 10) : 500000;

  std::printf("generating %zu bytes of %s data...\n", Bytes,
              huffmanFlavourName(Flavour));
  std::vector<uint8_t> Data = generateHuffmanData(Flavour, 7, Bytes);
  Encoded E = encode(Data);
  std::printf("encoded: %lld bits (%.2f bits/symbol, max code %u bits)\n",
              static_cast<long long>(E.NumBits),
              double(E.NumBits) / double(Data.size()),
              E.Code.maxCodeLength());

  Decoder D(E.Code);
  BitReader In(E.Bytes, E.NumBits);

  Timer T;
  std::vector<uint8_t> Seq = D.decodeAll(In, E.NumSymbols);
  std::printf("sequential decode: %.3f ms, round-trip %s\n\n",
              T.elapsedMillis(), Seq == Data ? "ok" : "BROKEN");

  const int NumTasks = 8;
  // Name the default shard explicitly: the run's executor activity
  // (steals, help-runs, queue pressure) lands in Run.Stats.Exec.
  std::shared_ptr<rt::SpecExecutor> Shard = rt::SpecExecutor::defaultShard();
  for (int64_t OverlapBytes : {2, 4, 8, 16, 64, 512}) {
    rt::SpecConfig Cfg = rt::SpecConfig().executor(Shard);
    T.reset();
    HuffmanRun Run = speculativeDecode(D, In, NumTasks, OverlapBytes * 8,
                                       Cfg);
    double Seconds = T.elapsedSeconds();
    double Accuracy = huffmanPredictionAccuracy(D, In, OverlapBytes * 8);
    bool Match = Run.Decoded == Data;
    std::printf("overlap %4lld B: accuracy %5.1f%%  %s  output %s  "
                "(%.3f ms)\n"
                "              executor: %s\n",
                static_cast<long long>(OverlapBytes), Accuracy,
                Run.Stats.Spec.str().c_str(), Match ? "match" : "MISMATCH",
                Seconds * 1e3, Run.Stats.Exec.str().c_str());
    if (!Match)
      return 1;
  }
  std::printf("\nall speculative decodes reproduced the input exactly.\n");
  return 0;
}
