//===- examples/quickstart.cpp - Speculation API in five minutes ----------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The smallest useful tour of the speculation API:
///
///  1. `Speculation::apply`          — run a consumer concurrently with its
///     producer by predicting the produced value (the paper's `spec`);
///  2. `Speculation::iterate`        — run all iterations of a loop with a
///     loop-carried dependence in parallel by predicting the carried
///     value entering each iteration (the paper's `specfold`);
///  3. `Speculation::iterateChunked` — the same, at segment granularity:
///     predict once per chunk, amortizing task overhead.
///
/// Calls take a fluent `SpecConfig` and return a `SpecResult` carrying the
/// value plus `SpeculationStats`. By default runs execute on the process's
/// default executor shard (`SpecExecutor::defaultShard()`); name an
/// executor explicitly with `SpecConfig::executor(SpecExecutor::create(N))`
/// when placement or lifetime matters. Nested speculative runs on one
/// shared executor are deadlock-free.
///
//===----------------------------------------------------------------------===//

#include "runtime/Speculation.h"

#include <cstdio>

using namespace specpar::rt;

int main() {
  // ------------------------------------------------------------------
  // 1. Speculative composition.
  //
  // The producer computes an expensive checksum; the consumer formats a
  // report from it. We predict the checksum (here: the common case 87) so
  // the consumer can start before the producer finishes. A misprediction
  // just re-runs the consumer with the real value.
  // ------------------------------------------------------------------
  auto Checksum = [] {
    long Sum = 0;
    for (int I = 1; I <= 1000000; ++I)
      Sum = (Sum + I) % 97;
    return Sum;
  };
  SpecResult<void> Good = Speculation::apply<long>(
      Checksum,
      /*Predictor=*/[] { return 87L; }, // a good domain-specific guess
      /*Consumer=*/
      [](long V) { std::printf("checksum report: %ld\n", V); });
  std::printf("apply: %s\n", Good.Stats.str().c_str());

  // With a wrong guess the consumer's side effect (the printf) runs twice
  // — once speculatively with the predicted value, once validated with
  // the real one. Nothing is rolled back; the *validated* execution is
  // the one whose effects the rollback-freedom conditions let you keep.
  SpecResult<void> Bad = Speculation::apply<long>(
      Checksum, [] { return 0L; },
      [](long V) { std::printf("checksum report (guess 0): %ld\n", V); });
  std::printf("apply with misprediction: %s\n\n", Bad.Stats.str().c_str());

  // ------------------------------------------------------------------
  // 2. Speculative iteration.
  //
  // A running sum is the classic loop-carried dependence:
  //     acc' = acc + f(i)
  // Because the sum of i*i over a prefix has a closed form, the
  // prediction function can compute the exact carried value entering any
  // iteration — so every iteration runs in parallel and validation never
  // re-executes anything. SpecConfig() picks the run's mode, thread
  // count, or executor; threads(0) — the default — means "one worker per
  // hardware thread" via the process's default shard.
  // ------------------------------------------------------------------
  auto SumOfSquaresBelow = [](int64_t I) {
    // sum_{k=1}^{I-1} k^2
    return (I - 1) * I * (2 * I - 1) / 6;
  };
  SpecResult<int64_t> Total = Speculation::iterate<int64_t>(
      1, 101,
      /*Body=*/[](int64_t I, int64_t Acc) { return Acc + I * I; },
      /*Predictor=*/SumOfSquaresBelow,
      SpecConfig().mode(ValidationMode::Seq));
  std::printf("sum of squares 1..100 = %lld (expect 338350)\n",
              static_cast<long long>(Total.Value));
  std::printf("iterate: %s\n\n", Total.Stats.str().c_str());

  // ------------------------------------------------------------------
  // 3. Chunked iteration: same loop, but speculate once per 25-iteration
  // chunk instead of once per iteration — 4 tasks and 3 validated
  // predictions instead of 100 and 99. This is how the paper's segment
  // experiments amortize per-task overhead.
  // ------------------------------------------------------------------
  SpecResult<int64_t> Chunked = Speculation::iterateChunked<int64_t>(
      1, 101, /*ChunkSize=*/25,
      [](int64_t I, int64_t Acc) { return Acc + I * I; }, SumOfSquaresBelow);
  std::printf("chunked sum = %lld, %s\n",
              static_cast<long long>(Chunked.Value),
              Chunked.Stats.str().c_str());

  // ------------------------------------------------------------------
  // 4. What a bad predictor costs: correctness is preserved, the stats
  // show the re-executions.
  // ------------------------------------------------------------------
  SpecResult<int64_t> Total2 = Speculation::iterate<int64_t>(
      1, 101, [](int64_t I, int64_t Acc) { return Acc + I * I; },
      [](int64_t I) { return I == 1 ? int64_t(0) : int64_t(-1); });
  std::printf("with a useless predictor: %lld, %s\n",
              static_cast<long long>(Total2.Value),
              Total2.Stats.str().c_str());
  return Total.Value == 338350 && Chunked.Value == 338350 &&
                 Total2.Value == 338350
             ? 0
             : 1;
}
