//===- examples/quickstart.cpp - Speculation API in five minutes ----------===//
//
// Part of specpar, a reproduction of "Safe Programmable Speculative
// Parallelism" (PLDI 2010). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The smallest useful tour of the speculation API:
///
///  1. `Speculation::apply`   — run a consumer concurrently with its
///     producer by predicting the produced value (the paper's `spec`);
///  2. `Speculation::iterate` — run all iterations of a loop with a
///     loop-carried dependence in parallel by predicting the carried
///     value entering each iteration (the paper's `specfold`).
///
//===----------------------------------------------------------------------===//

#include "runtime/Speculation.h"

#include <cstdio>

using namespace specpar::rt;

int main() {
  // ------------------------------------------------------------------
  // 1. Speculative composition.
  //
  // The producer computes an expensive checksum; the consumer formats a
  // report from it. We predict the checksum (here: the common case 0) so
  // the consumer can start before the producer finishes. A misprediction
  // just re-runs the consumer with the real value.
  // ------------------------------------------------------------------
  SpeculationStats ApplyStats;
  Options Opts;
  Opts.Stats = &ApplyStats;

  auto Checksum = [] {
    long Sum = 0;
    for (int I = 1; I <= 1000000; ++I)
      Sum = (Sum + I) % 97;
    return Sum;
  };
  Speculation::apply<long>(
      Checksum,
      /*Predictor=*/[] { return 87L; }, // a good domain-specific guess
      /*Consumer=*/
      [](long V) { std::printf("checksum report: %ld\n", V); }, Opts);
  std::printf("apply: %s\n", ApplyStats.str().c_str());

  // With a wrong guess the consumer's side effect (the printf) runs twice
  // — once speculatively with the predicted value, once validated with
  // the real one. Nothing is rolled back; the *validated* execution is
  // the one whose effects the rollback-freedom conditions let you keep.
  Speculation::apply<long>(
      Checksum, [] { return 0L; },
      [](long V) { std::printf("checksum report (guess 0): %ld\n", V); },
      Opts);
  std::printf("apply with misprediction: %s\n\n", ApplyStats.str().c_str());

  // ------------------------------------------------------------------
  // 2. Speculative iteration.
  //
  // A running sum is the classic loop-carried dependence:
  //     acc' = acc + f(i)
  // Because the sum of i*i over a prefix has a closed form, the
  // prediction function can compute the exact carried value entering any
  // iteration — so every iteration runs in parallel and validation never
  // re-executes anything.
  // ------------------------------------------------------------------
  SpeculationStats IterStats;
  Opts.Stats = &IterStats;
  Opts.NumThreads = 4;

  auto SumOfSquaresBelow = [](int64_t I) {
    // sum_{k=1}^{I-1} k^2
    return (I - 1) * I * (2 * I - 1) / 6;
  };
  int64_t Total = Speculation::iterate<int64_t>(
      1, 101,
      /*Body=*/[](int64_t I, int64_t Acc) { return Acc + I * I; },
      /*Predictor=*/SumOfSquaresBelow, Opts);
  std::printf("sum of squares 1..100 = %lld (expect 338350)\n",
              static_cast<long long>(Total));
  std::printf("iterate: %s\n\n", IterStats.str().c_str());

  // ------------------------------------------------------------------
  // 3. What a bad predictor costs: correctness is preserved, the stats
  // show the re-executions.
  // ------------------------------------------------------------------
  SpeculationStats BadStats;
  Opts.Stats = &BadStats;
  int64_t Total2 = Speculation::iterate<int64_t>(
      1, 101, [](int64_t I, int64_t Acc) { return Acc + I * I; },
      [](int64_t I) { return I == 1 ? int64_t(0) : int64_t(-1); }, Opts);
  std::printf("with a useless predictor: %lld, %s\n",
              static_cast<long long>(Total2), BadStats.str().c_str());
  return Total == 338350 && Total2 == 338350 ? 0 : 1;
}
