# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lexing "/root/repo/build/examples/speculative_lexing" "java" "30000")
set_tests_properties(example_lexing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_huffman "/root/repo/build/examples/speculative_huffman" "text" "60000")
set_tests_properties(example_huffman PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mwis "/root/repo/build/examples/speculative_mwis" "50" "100000")
set_tests_properties(example_mwis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ids "/root/repo/build/examples/speculative_ids" "100000")
set_tests_properties(example_ids PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_repl "/root/repo/build/examples/speculate_repl" "/root/repo/examples/speculate/04_slot_writes.spec")
set_tests_properties(example_repl PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
