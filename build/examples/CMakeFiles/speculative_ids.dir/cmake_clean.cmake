file(REMOVE_RECURSE
  "CMakeFiles/speculative_ids.dir/speculative_ids.cpp.o"
  "CMakeFiles/speculative_ids.dir/speculative_ids.cpp.o.d"
  "speculative_ids"
  "speculative_ids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speculative_ids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
