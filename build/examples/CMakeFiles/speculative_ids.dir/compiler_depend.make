# Empty compiler generated dependencies file for speculative_ids.
# This may be replaced when dependencies are built.
