
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/speculative_ids.cpp" "examples/CMakeFiles/speculative_ids.dir/speculative_ids.cpp.o" "gcc" "examples/CMakeFiles/speculative_ids.dir/speculative_ids.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lexgen/CMakeFiles/sp_lexgen.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/sp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
