file(REMOVE_RECURSE
  "CMakeFiles/speculative_huffman.dir/speculative_huffman.cpp.o"
  "CMakeFiles/speculative_huffman.dir/speculative_huffman.cpp.o.d"
  "speculative_huffman"
  "speculative_huffman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speculative_huffman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
