# Empty compiler generated dependencies file for speculative_huffman.
# This may be replaced when dependencies are built.
