# Empty compiler generated dependencies file for speculative_mwis.
# This may be replaced when dependencies are built.
