file(REMOVE_RECURSE
  "CMakeFiles/speculative_mwis.dir/speculative_mwis.cpp.o"
  "CMakeFiles/speculative_mwis.dir/speculative_mwis.cpp.o.d"
  "speculative_mwis"
  "speculative_mwis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speculative_mwis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
