file(REMOVE_RECURSE
  "CMakeFiles/speculative_lexing.dir/speculative_lexing.cpp.o"
  "CMakeFiles/speculative_lexing.dir/speculative_lexing.cpp.o.d"
  "speculative_lexing"
  "speculative_lexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speculative_lexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
