# Empty dependencies file for speculative_lexing.
# This may be replaced when dependencies are built.
