# Empty dependencies file for speculate_repl.
# This may be replaced when dependencies are built.
