file(REMOVE_RECURSE
  "CMakeFiles/speculate_repl.dir/speculate_repl.cpp.o"
  "CMakeFiles/speculate_repl.dir/speculate_repl.cpp.o.d"
  "speculate_repl"
  "speculate_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speculate_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
