file(REMOVE_RECURSE
  "CMakeFiles/sp_trace.dir/Equivalence.cpp.o"
  "CMakeFiles/sp_trace.dir/Equivalence.cpp.o.d"
  "CMakeFiles/sp_trace.dir/Trace.cpp.o"
  "CMakeFiles/sp_trace.dir/Trace.cpp.o.d"
  "libsp_trace.a"
  "libsp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
