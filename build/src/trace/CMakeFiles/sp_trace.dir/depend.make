# Empty dependencies file for sp_trace.
# This may be replaced when dependencies are built.
