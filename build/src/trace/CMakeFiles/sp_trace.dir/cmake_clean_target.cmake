file(REMOVE_RECURSE
  "libsp_trace.a"
)
