file(REMOVE_RECURSE
  "CMakeFiles/sp_lang.dir/Ast.cpp.o"
  "CMakeFiles/sp_lang.dir/Ast.cpp.o.d"
  "CMakeFiles/sp_lang.dir/Lexer.cpp.o"
  "CMakeFiles/sp_lang.dir/Lexer.cpp.o.d"
  "CMakeFiles/sp_lang.dir/Parser.cpp.o"
  "CMakeFiles/sp_lang.dir/Parser.cpp.o.d"
  "CMakeFiles/sp_lang.dir/Printer.cpp.o"
  "CMakeFiles/sp_lang.dir/Printer.cpp.o.d"
  "CMakeFiles/sp_lang.dir/Resolver.cpp.o"
  "CMakeFiles/sp_lang.dir/Resolver.cpp.o.d"
  "libsp_lang.a"
  "libsp_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
