file(REMOVE_RECURSE
  "libsp_lang.a"
)
