# Empty compiler generated dependencies file for sp_lang.
# This may be replaced when dependencies are built.
