file(REMOVE_RECURSE
  "CMakeFiles/sp_support.dir/CommandLine.cpp.o"
  "CMakeFiles/sp_support.dir/CommandLine.cpp.o.d"
  "CMakeFiles/sp_support.dir/Interval.cpp.o"
  "CMakeFiles/sp_support.dir/Interval.cpp.o.d"
  "CMakeFiles/sp_support.dir/StringUtils.cpp.o"
  "CMakeFiles/sp_support.dir/StringUtils.cpp.o.d"
  "CMakeFiles/sp_support.dir/Timer.cpp.o"
  "CMakeFiles/sp_support.dir/Timer.cpp.o.d"
  "libsp_support.a"
  "libsp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
