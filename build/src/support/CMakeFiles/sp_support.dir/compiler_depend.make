# Empty compiler generated dependencies file for sp_support.
# This may be replaced when dependencies are built.
