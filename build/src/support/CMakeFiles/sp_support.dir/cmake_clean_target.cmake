file(REMOVE_RECURSE
  "libsp_support.a"
)
