# Empty dependencies file for sp_simsched.
# This may be replaced when dependencies are built.
