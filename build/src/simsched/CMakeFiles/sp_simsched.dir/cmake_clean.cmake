file(REMOVE_RECURSE
  "CMakeFiles/sp_simsched.dir/SimSched.cpp.o"
  "CMakeFiles/sp_simsched.dir/SimSched.cpp.o.d"
  "libsp_simsched.a"
  "libsp_simsched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_simsched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
