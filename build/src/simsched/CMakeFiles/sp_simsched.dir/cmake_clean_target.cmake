file(REMOVE_RECURSE
  "libsp_simsched.a"
)
