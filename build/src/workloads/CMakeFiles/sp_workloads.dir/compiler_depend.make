# Empty compiler generated dependencies file for sp_workloads.
# This may be replaced when dependencies are built.
