file(REMOVE_RECURSE
  "libsp_workloads.a"
)
