file(REMOVE_RECURSE
  "CMakeFiles/sp_workloads.dir/Datasets.cpp.o"
  "CMakeFiles/sp_workloads.dir/Datasets.cpp.o.d"
  "CMakeFiles/sp_workloads.dir/SourceGen.cpp.o"
  "CMakeFiles/sp_workloads.dir/SourceGen.cpp.o.d"
  "libsp_workloads.a"
  "libsp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
