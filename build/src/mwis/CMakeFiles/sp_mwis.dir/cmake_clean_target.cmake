file(REMOVE_RECURSE
  "libsp_mwis.a"
)
