file(REMOVE_RECURSE
  "CMakeFiles/sp_mwis.dir/Mwis.cpp.o"
  "CMakeFiles/sp_mwis.dir/Mwis.cpp.o.d"
  "libsp_mwis.a"
  "libsp_mwis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_mwis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
