# Empty compiler generated dependencies file for sp_mwis.
# This may be replaced when dependencies are built.
