file(REMOVE_RECURSE
  "CMakeFiles/sp_analysis.dir/AbstractHeap.cpp.o"
  "CMakeFiles/sp_analysis.dir/AbstractHeap.cpp.o.d"
  "CMakeFiles/sp_analysis.dir/AbstractInterp.cpp.o"
  "CMakeFiles/sp_analysis.dir/AbstractInterp.cpp.o.d"
  "CMakeFiles/sp_analysis.dir/Effects.cpp.o"
  "CMakeFiles/sp_analysis.dir/Effects.cpp.o.d"
  "CMakeFiles/sp_analysis.dir/RollbackChecker.cpp.o"
  "CMakeFiles/sp_analysis.dir/RollbackChecker.cpp.o.d"
  "CMakeFiles/sp_analysis.dir/SymExpr.cpp.o"
  "CMakeFiles/sp_analysis.dir/SymExpr.cpp.o.d"
  "libsp_analysis.a"
  "libsp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
