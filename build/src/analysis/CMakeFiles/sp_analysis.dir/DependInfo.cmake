
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/AbstractHeap.cpp" "src/analysis/CMakeFiles/sp_analysis.dir/AbstractHeap.cpp.o" "gcc" "src/analysis/CMakeFiles/sp_analysis.dir/AbstractHeap.cpp.o.d"
  "/root/repo/src/analysis/AbstractInterp.cpp" "src/analysis/CMakeFiles/sp_analysis.dir/AbstractInterp.cpp.o" "gcc" "src/analysis/CMakeFiles/sp_analysis.dir/AbstractInterp.cpp.o.d"
  "/root/repo/src/analysis/Effects.cpp" "src/analysis/CMakeFiles/sp_analysis.dir/Effects.cpp.o" "gcc" "src/analysis/CMakeFiles/sp_analysis.dir/Effects.cpp.o.d"
  "/root/repo/src/analysis/RollbackChecker.cpp" "src/analysis/CMakeFiles/sp_analysis.dir/RollbackChecker.cpp.o" "gcc" "src/analysis/CMakeFiles/sp_analysis.dir/RollbackChecker.cpp.o.d"
  "/root/repo/src/analysis/SymExpr.cpp" "src/analysis/CMakeFiles/sp_analysis.dir/SymExpr.cpp.o" "gcc" "src/analysis/CMakeFiles/sp_analysis.dir/SymExpr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/sp_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
