# Empty compiler generated dependencies file for sp_analysis.
# This may be replaced when dependencies are built.
