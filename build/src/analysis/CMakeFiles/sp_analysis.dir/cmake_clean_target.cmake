file(REMOVE_RECURSE
  "libsp_analysis.a"
)
