file(REMOVE_RECURSE
  "CMakeFiles/sp_runtime.dir/EffectCheck.cpp.o"
  "CMakeFiles/sp_runtime.dir/EffectCheck.cpp.o.d"
  "CMakeFiles/sp_runtime.dir/Speculation.cpp.o"
  "CMakeFiles/sp_runtime.dir/Speculation.cpp.o.d"
  "CMakeFiles/sp_runtime.dir/ThreadPool.cpp.o"
  "CMakeFiles/sp_runtime.dir/ThreadPool.cpp.o.d"
  "libsp_runtime.a"
  "libsp_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
