file(REMOVE_RECURSE
  "libsp_runtime.a"
)
