# Empty compiler generated dependencies file for sp_runtime.
# This may be replaced when dependencies are built.
