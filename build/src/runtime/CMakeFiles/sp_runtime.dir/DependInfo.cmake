
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/EffectCheck.cpp" "src/runtime/CMakeFiles/sp_runtime.dir/EffectCheck.cpp.o" "gcc" "src/runtime/CMakeFiles/sp_runtime.dir/EffectCheck.cpp.o.d"
  "/root/repo/src/runtime/Speculation.cpp" "src/runtime/CMakeFiles/sp_runtime.dir/Speculation.cpp.o" "gcc" "src/runtime/CMakeFiles/sp_runtime.dir/Speculation.cpp.o.d"
  "/root/repo/src/runtime/ThreadPool.cpp" "src/runtime/CMakeFiles/sp_runtime.dir/ThreadPool.cpp.o" "gcc" "src/runtime/CMakeFiles/sp_runtime.dir/ThreadPool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/sp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
