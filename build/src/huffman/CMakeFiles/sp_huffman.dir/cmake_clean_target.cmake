file(REMOVE_RECURSE
  "libsp_huffman.a"
)
