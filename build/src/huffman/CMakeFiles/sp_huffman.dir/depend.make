# Empty dependencies file for sp_huffman.
# This may be replaced when dependencies are built.
