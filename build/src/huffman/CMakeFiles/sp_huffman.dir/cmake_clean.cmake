file(REMOVE_RECURSE
  "CMakeFiles/sp_huffman.dir/Huffman.cpp.o"
  "CMakeFiles/sp_huffman.dir/Huffman.cpp.o.d"
  "libsp_huffman.a"
  "libsp_huffman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_huffman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
