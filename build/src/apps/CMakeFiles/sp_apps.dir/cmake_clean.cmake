file(REMOVE_RECURSE
  "CMakeFiles/sp_apps.dir/SpeculativeHuffman.cpp.o"
  "CMakeFiles/sp_apps.dir/SpeculativeHuffman.cpp.o.d"
  "CMakeFiles/sp_apps.dir/SpeculativeLexing.cpp.o"
  "CMakeFiles/sp_apps.dir/SpeculativeLexing.cpp.o.d"
  "CMakeFiles/sp_apps.dir/SpeculativeMwis.cpp.o"
  "CMakeFiles/sp_apps.dir/SpeculativeMwis.cpp.o.d"
  "libsp_apps.a"
  "libsp_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
