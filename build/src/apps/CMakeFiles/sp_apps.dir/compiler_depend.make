# Empty compiler generated dependencies file for sp_apps.
# This may be replaced when dependencies are built.
