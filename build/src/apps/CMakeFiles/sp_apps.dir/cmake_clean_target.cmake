file(REMOVE_RECURSE
  "libsp_apps.a"
)
