
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/SpeculativeHuffman.cpp" "src/apps/CMakeFiles/sp_apps.dir/SpeculativeHuffman.cpp.o" "gcc" "src/apps/CMakeFiles/sp_apps.dir/SpeculativeHuffman.cpp.o.d"
  "/root/repo/src/apps/SpeculativeLexing.cpp" "src/apps/CMakeFiles/sp_apps.dir/SpeculativeLexing.cpp.o" "gcc" "src/apps/CMakeFiles/sp_apps.dir/SpeculativeLexing.cpp.o.d"
  "/root/repo/src/apps/SpeculativeMwis.cpp" "src/apps/CMakeFiles/sp_apps.dir/SpeculativeMwis.cpp.o" "gcc" "src/apps/CMakeFiles/sp_apps.dir/SpeculativeMwis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lexgen/CMakeFiles/sp_lexgen.dir/DependInfo.cmake"
  "/root/repo/build/src/huffman/CMakeFiles/sp_huffman.dir/DependInfo.cmake"
  "/root/repo/build/src/mwis/CMakeFiles/sp_mwis.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/sp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/simsched/CMakeFiles/sp_simsched.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
