# Empty compiler generated dependencies file for sp_interp.
# This may be replaced when dependencies are built.
