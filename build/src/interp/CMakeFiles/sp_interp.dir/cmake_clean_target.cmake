file(REMOVE_RECURSE
  "libsp_interp.a"
)
