
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interp/Heap.cpp" "src/interp/CMakeFiles/sp_interp.dir/Heap.cpp.o" "gcc" "src/interp/CMakeFiles/sp_interp.dir/Heap.cpp.o.d"
  "/root/repo/src/interp/NonSpecEval.cpp" "src/interp/CMakeFiles/sp_interp.dir/NonSpecEval.cpp.o" "gcc" "src/interp/CMakeFiles/sp_interp.dir/NonSpecEval.cpp.o.d"
  "/root/repo/src/interp/Scheduler.cpp" "src/interp/CMakeFiles/sp_interp.dir/Scheduler.cpp.o" "gcc" "src/interp/CMakeFiles/sp_interp.dir/Scheduler.cpp.o.d"
  "/root/repo/src/interp/SpecMachine.cpp" "src/interp/CMakeFiles/sp_interp.dir/SpecMachine.cpp.o" "gcc" "src/interp/CMakeFiles/sp_interp.dir/SpecMachine.cpp.o.d"
  "/root/repo/src/interp/Value.cpp" "src/interp/CMakeFiles/sp_interp.dir/Value.cpp.o" "gcc" "src/interp/CMakeFiles/sp_interp.dir/Value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/sp_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
