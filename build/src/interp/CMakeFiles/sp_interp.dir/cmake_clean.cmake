file(REMOVE_RECURSE
  "CMakeFiles/sp_interp.dir/Heap.cpp.o"
  "CMakeFiles/sp_interp.dir/Heap.cpp.o.d"
  "CMakeFiles/sp_interp.dir/NonSpecEval.cpp.o"
  "CMakeFiles/sp_interp.dir/NonSpecEval.cpp.o.d"
  "CMakeFiles/sp_interp.dir/Scheduler.cpp.o"
  "CMakeFiles/sp_interp.dir/Scheduler.cpp.o.d"
  "CMakeFiles/sp_interp.dir/SpecMachine.cpp.o"
  "CMakeFiles/sp_interp.dir/SpecMachine.cpp.o.d"
  "CMakeFiles/sp_interp.dir/Value.cpp.o"
  "CMakeFiles/sp_interp.dir/Value.cpp.o.d"
  "libsp_interp.a"
  "libsp_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
