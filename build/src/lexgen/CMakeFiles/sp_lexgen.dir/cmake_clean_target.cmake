file(REMOVE_RECURSE
  "libsp_lexgen.a"
)
