file(REMOVE_RECURSE
  "CMakeFiles/sp_lexgen.dir/Dfa.cpp.o"
  "CMakeFiles/sp_lexgen.dir/Dfa.cpp.o.d"
  "CMakeFiles/sp_lexgen.dir/Languages.cpp.o"
  "CMakeFiles/sp_lexgen.dir/Languages.cpp.o.d"
  "CMakeFiles/sp_lexgen.dir/Lexer.cpp.o"
  "CMakeFiles/sp_lexgen.dir/Lexer.cpp.o.d"
  "CMakeFiles/sp_lexgen.dir/Nfa.cpp.o"
  "CMakeFiles/sp_lexgen.dir/Nfa.cpp.o.d"
  "CMakeFiles/sp_lexgen.dir/Regex.cpp.o"
  "CMakeFiles/sp_lexgen.dir/Regex.cpp.o.d"
  "libsp_lexgen.a"
  "libsp_lexgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_lexgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
