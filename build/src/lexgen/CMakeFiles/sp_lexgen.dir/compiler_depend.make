# Empty compiler generated dependencies file for sp_lexgen.
# This may be replaced when dependencies are built.
