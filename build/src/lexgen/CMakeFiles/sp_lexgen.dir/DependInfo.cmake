
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lexgen/Dfa.cpp" "src/lexgen/CMakeFiles/sp_lexgen.dir/Dfa.cpp.o" "gcc" "src/lexgen/CMakeFiles/sp_lexgen.dir/Dfa.cpp.o.d"
  "/root/repo/src/lexgen/Languages.cpp" "src/lexgen/CMakeFiles/sp_lexgen.dir/Languages.cpp.o" "gcc" "src/lexgen/CMakeFiles/sp_lexgen.dir/Languages.cpp.o.d"
  "/root/repo/src/lexgen/Lexer.cpp" "src/lexgen/CMakeFiles/sp_lexgen.dir/Lexer.cpp.o" "gcc" "src/lexgen/CMakeFiles/sp_lexgen.dir/Lexer.cpp.o.d"
  "/root/repo/src/lexgen/Nfa.cpp" "src/lexgen/CMakeFiles/sp_lexgen.dir/Nfa.cpp.o" "gcc" "src/lexgen/CMakeFiles/sp_lexgen.dir/Nfa.cpp.o.d"
  "/root/repo/src/lexgen/Regex.cpp" "src/lexgen/CMakeFiles/sp_lexgen.dir/Regex.cpp.o" "gcc" "src/lexgen/CMakeFiles/sp_lexgen.dir/Regex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/sp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
