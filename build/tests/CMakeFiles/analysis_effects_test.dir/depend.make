# Empty dependencies file for analysis_effects_test.
# This may be replaced when dependencies are built.
