file(REMOVE_RECURSE
  "CMakeFiles/analysis_effects_test.dir/analysis_effects_test.cpp.o"
  "CMakeFiles/analysis_effects_test.dir/analysis_effects_test.cpp.o.d"
  "analysis_effects_test"
  "analysis_effects_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_effects_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
