file(REMOVE_RECURSE
  "CMakeFiles/interp_semantics_test.dir/interp_semantics_test.cpp.o"
  "CMakeFiles/interp_semantics_test.dir/interp_semantics_test.cpp.o.d"
  "interp_semantics_test"
  "interp_semantics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interp_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
