file(REMOVE_RECURSE
  "CMakeFiles/effectcheck_test.dir/effectcheck_test.cpp.o"
  "CMakeFiles/effectcheck_test.dir/effectcheck_test.cpp.o.d"
  "effectcheck_test"
  "effectcheck_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/effectcheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
