# Empty compiler generated dependencies file for effectcheck_test.
# This may be replaced when dependencies are built.
