file(REMOVE_RECURSE
  "CMakeFiles/lexgen_lexer_test.dir/lexgen_lexer_test.cpp.o"
  "CMakeFiles/lexgen_lexer_test.dir/lexgen_lexer_test.cpp.o.d"
  "lexgen_lexer_test"
  "lexgen_lexer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lexgen_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
