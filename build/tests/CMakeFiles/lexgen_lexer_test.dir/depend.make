# Empty dependencies file for lexgen_lexer_test.
# This may be replaced when dependencies are built.
