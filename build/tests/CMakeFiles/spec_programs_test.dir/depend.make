# Empty dependencies file for spec_programs_test.
# This may be replaced when dependencies are built.
