file(REMOVE_RECURSE
  "CMakeFiles/spec_programs_test.dir/spec_programs_test.cpp.o"
  "CMakeFiles/spec_programs_test.dir/spec_programs_test.cpp.o.d"
  "spec_programs_test"
  "spec_programs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_programs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
