# Empty dependencies file for lexgen_regex_test.
# This may be replaced when dependencies are built.
