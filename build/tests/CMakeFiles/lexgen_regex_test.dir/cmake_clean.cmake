file(REMOVE_RECURSE
  "CMakeFiles/lexgen_regex_test.dir/lexgen_regex_test.cpp.o"
  "CMakeFiles/lexgen_regex_test.dir/lexgen_regex_test.cpp.o.d"
  "lexgen_regex_test"
  "lexgen_regex_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lexgen_regex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
