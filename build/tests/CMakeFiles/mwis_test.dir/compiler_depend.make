# Empty compiler generated dependencies file for mwis_test.
# This may be replaced when dependencies are built.
