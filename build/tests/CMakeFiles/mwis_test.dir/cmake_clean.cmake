file(REMOVE_RECURSE
  "CMakeFiles/mwis_test.dir/mwis_test.cpp.o"
  "CMakeFiles/mwis_test.dir/mwis_test.cpp.o.d"
  "mwis_test"
  "mwis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
