file(REMOVE_RECURSE
  "CMakeFiles/examples_corpus_test.dir/examples_corpus_test.cpp.o"
  "CMakeFiles/examples_corpus_test.dir/examples_corpus_test.cpp.o.d"
  "examples_corpus_test"
  "examples_corpus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/examples_corpus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
