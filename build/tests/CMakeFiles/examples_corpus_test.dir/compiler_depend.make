# Empty compiler generated dependencies file for examples_corpus_test.
# This may be replaced when dependencies are built.
