# Empty compiler generated dependencies file for simsched_test.
# This may be replaced when dependencies are built.
