file(REMOVE_RECURSE
  "CMakeFiles/simsched_test.dir/simsched_test.cpp.o"
  "CMakeFiles/simsched_test.dir/simsched_test.cpp.o.d"
  "simsched_test"
  "simsched_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simsched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
