# Empty compiler generated dependencies file for fig9_analysis.
# This may be replaced when dependencies are built.
