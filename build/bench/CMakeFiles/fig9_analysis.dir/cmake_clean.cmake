file(REMOVE_RECURSE
  "CMakeFiles/fig9_analysis.dir/fig9_analysis.cpp.o"
  "CMakeFiles/fig9_analysis.dir/fig9_analysis.cpp.o.d"
  "fig9_analysis"
  "fig9_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
