file(REMOVE_RECURSE
  "CMakeFiles/interp_ablation.dir/interp_ablation.cpp.o"
  "CMakeFiles/interp_ablation.dir/interp_ablation.cpp.o.d"
  "interp_ablation"
  "interp_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interp_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
