# Empty compiler generated dependencies file for interp_ablation.
# This may be replaced when dependencies are built.
