file(REMOVE_RECURSE
  "CMakeFiles/fig8_validation.dir/fig8_validation.cpp.o"
  "CMakeFiles/fig8_validation.dir/fig8_validation.cpp.o.d"
  "fig8_validation"
  "fig8_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
