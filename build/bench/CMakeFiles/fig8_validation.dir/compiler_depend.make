# Empty compiler generated dependencies file for fig8_validation.
# This may be replaced when dependencies are built.
