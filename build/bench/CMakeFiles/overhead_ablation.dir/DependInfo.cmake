
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/overhead_ablation.cpp" "bench/CMakeFiles/overhead_ablation.dir/overhead_ablation.cpp.o" "gcc" "bench/CMakeFiles/overhead_ablation.dir/overhead_ablation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/sp_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/sp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/huffman/CMakeFiles/sp_huffman.dir/DependInfo.cmake"
  "/root/repo/build/src/mwis/CMakeFiles/sp_mwis.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/sp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/simsched/CMakeFiles/sp_simsched.dir/DependInfo.cmake"
  "/root/repo/build/src/lexgen/CMakeFiles/sp_lexgen.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
