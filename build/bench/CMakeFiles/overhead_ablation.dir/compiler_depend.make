# Empty compiler generated dependencies file for overhead_ablation.
# This may be replaced when dependencies are built.
