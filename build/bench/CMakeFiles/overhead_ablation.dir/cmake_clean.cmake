file(REMOVE_RECURSE
  "CMakeFiles/overhead_ablation.dir/overhead_ablation.cpp.o"
  "CMakeFiles/overhead_ablation.dir/overhead_ablation.cpp.o.d"
  "overhead_ablation"
  "overhead_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
