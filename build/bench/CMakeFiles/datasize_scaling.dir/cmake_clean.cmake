file(REMOVE_RECURSE
  "CMakeFiles/datasize_scaling.dir/datasize_scaling.cpp.o"
  "CMakeFiles/datasize_scaling.dir/datasize_scaling.cpp.o.d"
  "datasize_scaling"
  "datasize_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datasize_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
