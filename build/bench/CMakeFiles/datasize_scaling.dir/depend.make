# Empty dependencies file for datasize_scaling.
# This may be replaced when dependencies are built.
